"""Parity of the serving backends against the engines they wrap.

The serving layer must add *zero* numerical drift: the float backend is the
``repro.nn`` forward pass and the int8 backend is the integer graph
executor, so outputs routed through ``InferenceServer`` (including the
micro-batching path) must match the direct calls bit for bit.
"""

import numpy as np
import pytest

from repro.deploy import IntegerGraphExecutor, lower_to_int8, trace_model
from repro.models import build_model
from repro.nn.tensor import Tensor
from repro.serve import (
    BackendCache,
    FloatBackend,
    InferenceServer,
    Priority,
    WorkerPool,
    build_int8_backend,
)

ARCHITECTURES = ["bio1", "bio2", "temponet"]
GEOMETRY = dict(num_channels=4, window_samples=60, seed=11)


def make_model(name):
    return build_model(name, patch_size=10, **GEOMETRY).eval()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="module")
def cache():
    return BackendCache()


# --------------------------------------------------------------------- #
# Float backend
# --------------------------------------------------------------------- #
class TestFloatParity:
    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_server_matches_direct_forward_bitwise(self, name, rng, cache):
        model = make_model(name)
        x = rng.normal(size=(6, 4, 60))
        expected = model(Tensor(x)).data
        with InferenceServer(
            model, "float", cache=cache, max_batch_size=8, max_wait_s=0.05
        ) as server:
            served = server.infer(x)
        np.testing.assert_array_equal(served, expected)

    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_registry_lookup_matches_direct_build(self, name, rng, cache):
        x = rng.normal(size=(4, 4, 60))
        expected = make_model(name)(Tensor(x)).data
        with InferenceServer(
            name,
            "float",
            patch_size=10,
            model_kwargs=GEOMETRY,
            cache=cache,
            max_batch_size=4,
        ) as server:
            np.testing.assert_array_equal(server.infer(x), expected)

    def test_backend_run_is_inference_only(self, rng):
        model = make_model("bio1")
        backend = FloatBackend(model)
        logits = backend.run(rng.normal(size=(3, 4, 60)))
        assert isinstance(logits, np.ndarray)
        assert logits.shape == (3, 8)
        # Evaluation mode was set by the backend constructor.
        assert not model.training

    def test_predict_matches_argmax(self, rng, cache):
        with InferenceServer(
            "bio2", "float", patch_size=10, model_kwargs=GEOMETRY, cache=cache
        ) as server:
            x = rng.normal(size=(5, 4, 60))
            np.testing.assert_array_equal(
                server.predict(x), np.argmax(server.infer(x), axis=-1)
            )


# --------------------------------------------------------------------- #
# Int8 backend
# --------------------------------------------------------------------- #
class TestInt8Parity:
    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_server_matches_int_engine_golden(self, name, rng, cache):
        model = make_model(name)
        calibration = rng.normal(size=(16, 4, 60))
        x = rng.normal(size=(6, 4, 60))

        golden = IntegerGraphExecutor(lower_to_int8(trace_model(model), calibration))
        with InferenceServer(
            model,
            "int8",
            calibration=calibration,
            cache=cache,
            max_batch_size=8,
            max_wait_s=0.05,
        ) as server:
            served = server.infer(x)
        np.testing.assert_array_equal(served, golden.run(x))

    def test_integer_grid_exposed(self, rng):
        model = make_model("bio1")
        calibration = rng.normal(size=(8, 4, 60))
        backend = build_int8_backend(model, calibration)
        integer = backend.run_integer(rng.normal(size=(3, 4, 60)))
        assert integer.min() >= -128 and integer.max() <= 127
        assert backend.num_classes == 8
        assert backend.input_shape == (4, 60)

    def test_deterministic_default_calibration(self):
        model = make_model("bio1")
        first = build_int8_backend(model, seed=3)
        second = build_int8_backend(model, seed=3)
        x = np.random.default_rng(5).normal(size=(4, 4, 60))
        np.testing.assert_array_equal(first.run(x), second.run(x))


# --------------------------------------------------------------------- #
# Facade behaviour shared by both backends
# --------------------------------------------------------------------- #
class TestServerFacade:
    def test_both_backends_one_api(self, rng, cache):
        x = rng.normal(size=(3, 4, 60))
        outputs = {}
        for backend in ("float", "int8"):
            with InferenceServer(
                "bio1",
                backend,
                patch_size=10,
                model_kwargs=GEOMETRY,
                calibration=rng.normal(size=(8, 4, 60)),
                cache=cache,
            ) as server:
                assert server.input_shape == (4, 60)
                assert server.num_classes == 8
                outputs[backend] = server.predict(x)
        assert outputs["float"].shape == outputs["int8"].shape == (3,)

    def test_cache_shares_backends_between_servers(self, rng):
        cache = BackendCache()
        kwargs = dict(patch_size=10, model_kwargs=GEOMETRY, cache=cache)
        with InferenceServer("bio1", "float", **kwargs) as first:
            with InferenceServer("bio1", "float", **kwargs) as second:
                assert first.backend is second.backend
        assert cache.hits >= 1 and cache.misses == 1

    def test_distinct_patch_sizes_get_distinct_backends(self):
        cache = BackendCache()
        kw = dict(model_kwargs=GEOMETRY, cache=cache)
        with InferenceServer("bio1", "float", patch_size=10, **kw) as a:
            with InferenceServer("bio1", "float", patch_size=20, **kw) as b:
                assert a.backend is not b.backend
        assert len(cache) == 2

    def test_rejects_wrong_window_shape(self, cache):
        with InferenceServer(
            "bio1", "float", patch_size=10, model_kwargs=GEOMETRY, cache=cache
        ) as server:
            with pytest.raises(ValueError, match="window of shape"):
                server.submit(np.zeros((3, 60)))

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            InferenceServer("bio1", "fp16")

    def test_infer_zero_windows_returns_empty_logits(self, cache):
        """Regression: ``infer([])`` used to crash inside ``np.stack([])``."""
        with InferenceServer(
            "bio1", "float", patch_size=10, model_kwargs=GEOMETRY, cache=cache
        ) as server:
            logits = server.infer([])
            assert logits.shape == (0, server.num_classes)
            assert server.predict([]).shape == (0,)
            assert server.infer(np.empty((0, 4, 60))).shape == (0, 8)

    def test_rejects_non_positive_workers_and_pool_conflict(self, cache):
        kwargs = dict(patch_size=10, model_kwargs=GEOMETRY, cache=cache)
        with pytest.raises(ValueError, match="num_workers"):
            InferenceServer("bio1", "float", num_workers=0, **kwargs)
        with WorkerPool(num_workers=2) as pool:
            with pytest.raises(ValueError, match="either num_workers or"):
                InferenceServer("bio1", "float", num_workers=2, pool=pool, **kwargs)

    def test_stats_snapshot_is_frozen(self, rng, cache):
        with InferenceServer(
            "bio1", "float", patch_size=10, model_kwargs=GEOMETRY, cache=cache
        ) as server:
            server.infer(rng.normal(size=(3, 4, 60)))
            stats = server.stats
            with pytest.raises(AttributeError):
                stats.backend = "other"
            with pytest.raises(AttributeError):
                stats.batcher.requests = 0
        assert stats.requests == 3


# --------------------------------------------------------------------- #
# Multi-worker pool execution and the async/priority surface
# --------------------------------------------------------------------- #
class TestPoolServing:
    def test_pooled_server_matches_direct_forward_bitwise(self, rng, cache):
        """Parity must survive concurrent batch execution on N workers."""
        model = make_model("bio1")
        x = rng.normal(size=(24, 4, 60))
        expected = model(Tensor(x)).data
        with InferenceServer(
            model, "float", cache=cache, max_batch_size=4, max_wait_s=0.001, num_workers=4
        ) as server:
            assert server.num_workers == 4
            served = server.infer(x)
            pool_stats = server.stats.pool
        np.testing.assert_array_equal(served, expected)
        assert pool_stats is not None and pool_stats.jobs >= 1

    def test_external_pool_is_borrowed_not_closed(self, rng, cache):
        model = make_model("bio1")
        with WorkerPool(num_workers=2, name="shared") as pool:
            for _ in range(2):  # two servers share the same pool
                with InferenceServer(
                    model, "float", cache=cache, max_batch_size=4, pool=pool
                ) as server:
                    assert server.infer(rng.normal(size=(4, 4, 60))).shape == (4, 8)
                assert not pool.closed
            assert pool.stats.jobs >= 2

    def test_infer_async_and_as_completed(self, rng, cache):
        with InferenceServer(
            "bio1", "float", patch_size=10, model_kwargs=GEOMETRY, cache=cache
        ) as server:
            x = rng.normal(size=(6, 4, 60))
            futures = server.infer_async(x)
            assert len(futures) == 6
            done = list(server.as_completed(futures, timeout=30.0))
            assert set(done) == set(futures)
            ordered = np.stack([f.result(timeout=0) for f in futures])
            np.testing.assert_array_equal(ordered, server.infer(x))

    def test_per_priority_stats_split_stream_from_bulk(self, rng, cache):
        with InferenceServer(
            "bio1", "float", patch_size=10, model_kwargs=GEOMETRY, cache=cache
        ) as server:
            server.infer(rng.normal(size=(5, 4, 60)))  # bulk -> LOW
            server.submit(
                rng.normal(size=(4, 60)), priority=Priority.HIGH
            ).result(timeout=30.0)
            by_priority = server.stats.by_priority
        assert by_priority[int(Priority.LOW)] == 5
        assert by_priority[int(Priority.HIGH)] == 1
