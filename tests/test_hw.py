"""Tests of the GAP8 hardware substrate: profiler, cost model, battery."""

import numpy as np
import pytest

from repro.hw import (
    BatteryConfig,
    GAP8Config,
    GAP8Model,
    battery_life_hours,
    deploy,
    duty_cycle_power,
    profile_bioformer,
    profile_model,
    profile_temponet,
)
from repro.models import (
    Bioformer,
    BioformerConfig,
    TEMPONet,
    TEMPONetConfig,
    bioformer_bio1,
    bioformer_bio2,
    temponet,
)

#: The measured rows of the paper's Table I used as reference.
PAPER_TABLE1 = {
    "bio1_30": {"memory_kb": 110.8, "mmac": 1.2, "latency_ms": 1.03, "energy_mj": 0.052},
    "bio1_20": {"memory_kb": 102.1, "mmac": 1.7, "latency_ms": 1.37, "energy_mj": 0.070},
    "bio1_10": {"memory_kb": 94.2, "mmac": 3.3, "latency_ms": 2.72, "energy_mj": 0.139},
    "bio2_30": {"memory_kb": 92.2, "mmac": 1.0, "latency_ms": 1.55, "energy_mj": 0.079},
    "bio2_10": {"memory_kb": 78.3, "mmac": 2.5, "latency_ms": 4.82, "energy_mj": 0.246},
    "temponet": {"memory_kb": 461.0, "mmac": 16.0, "latency_ms": 21.82, "energy_mj": 1.11},
}


def _config(key):
    if key == "temponet":
        return TEMPONetConfig()
    variant, filter_dimension = key.split("_")
    depth, heads = (1, 8) if variant == "bio1" else (2, 2)
    return BioformerConfig(depth=depth, num_heads=heads, patch_size=int(filter_dimension))


class TestProfiler:
    @pytest.mark.parametrize("builder,config_type", [
        (lambda: bioformer_bio1(patch_size=10), BioformerConfig),
        (lambda: bioformer_bio2(patch_size=30), BioformerConfig),
        (lambda: temponet(), TEMPONetConfig),
    ])
    def test_profiled_params_match_instantiated_model(self, builder, config_type):
        model = builder()
        profile = profile_model(model)
        assert profile.total_params == model.num_parameters()

    def test_profile_dispatch_on_configs(self):
        assert profile_model(BioformerConfig()).total_params == profile_bioformer(BioformerConfig()).total_params
        assert profile_model(TEMPONetConfig()).total_params == profile_temponet(TEMPONetConfig()).total_params
        with pytest.raises(TypeError):
            profile_model(42)

    @pytest.mark.parametrize("key", sorted(PAPER_TABLE1))
    def test_mmacs_and_memory_match_paper(self, key):
        profile = profile_model(_config(key))
        reference = PAPER_TABLE1[key]
        assert profile.mmacs == pytest.approx(reference["mmac"], rel=0.25)
        assert profile.memory_kilobytes() == pytest.approx(reference["memory_kb"], rel=0.06)

    def test_mac_reduction_factor_vs_temponet(self):
        """The headline claim: Bio1 (filter 10) needs ~4.9x fewer MACs."""
        bio1 = profile_bioformer(BioformerConfig(depth=1, num_heads=8, patch_size=10))
        tcn = profile_temponet(TEMPONetConfig())
        assert 4.0 < tcn.total_macs / bio1.total_macs < 6.5

    def test_attention_cost_scales_with_sequence_length(self):
        short = profile_bioformer(BioformerConfig(patch_size=30))
        long = profile_bioformer(BioformerConfig(patch_size=5))
        assert long.total_macs > 3 * short.total_macs

    def test_by_kind_breakdown_sums_to_total(self):
        profile = profile_bioformer(BioformerConfig())
        assert sum(profile.by_kind().values()) == profile.total_macs

    def test_memory_scales_with_bit_width(self):
        profile = profile_bioformer(BioformerConfig())
        assert profile.memory_bytes(32) == 4 * profile.memory_bytes(8)


class TestGAP8CostModel:
    @pytest.mark.parametrize("key", sorted(PAPER_TABLE1))
    def test_latency_and_energy_within_tolerance_of_table1(self, key):
        """The calibrated cost model reproduces every measured Table I row
        within 15% (latency) — the shape-level fidelity the reproduction
        targets."""
        record = deploy(_config(key))
        reference = PAPER_TABLE1[key]
        assert record.latency_ms == pytest.approx(reference["latency_ms"], rel=0.15)
        assert record.energy_mj == pytest.approx(reference["energy_mj"], rel=0.15)

    def test_energy_reduction_vs_temponet(self):
        """Paper: Bio1 (filter 10) consumes ~8x less energy than TEMPONet."""
        bio1 = deploy(_config("bio1_10"))
        tcn = deploy(_config("temponet"))
        assert 6.0 < tcn.energy_mj / bio1.energy_mj < 10.0

    def test_fewer_heads_hurt_latency_despite_fewer_macs(self):
        """Table I: Bio2 (2 heads) is slower than Bio1 (8 heads) at filter 10
        even though it executes fewer MACs."""
        bio1 = deploy(_config("bio1_10"))
        bio2 = deploy(_config("bio2_10"))
        assert bio2.mmacs < bio1.mmacs
        assert bio2.latency_ms > bio1.latency_ms

    def test_energy_is_latency_times_power(self):
        record = deploy(_config("bio1_10"))
        assert record.energy_mj == pytest.approx(record.latency_ms * 51e-3, rel=1e-6)

    def test_memory_fits_l2(self):
        target = GAP8Model()
        assert target.fits_memory(profile_bioformer(BioformerConfig()))
        assert target.fits_memory(profile_temponet(TEMPONetConfig()))
        assert 0.0 < target.memory_utilization(profile_bioformer(BioformerConfig())) < 1.0

    def test_dominant_layers_sorted(self):
        breakdown = GAP8Model().latency(profile_bioformer(BioformerConfig()))
        dominant = breakdown.dominant_layers(3)
        assert len(dominant) == 3
        assert dominant[0].cycles >= dominant[1].cycles >= dominant[2].cycles

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GAP8Config(num_cores=0).validate()
        with pytest.raises(ValueError):
            GAP8Config(peak_macs_per_cycle=0).validate()

    def test_custom_frequency_scales_latency(self):
        slow = deploy(_config("bio1_10"), gap8=GAP8Config(frequency_hz=50e6))
        fast = deploy(_config("bio1_10"), gap8=GAP8Config(frequency_hz=100e6))
        assert slow.latency_ms == pytest.approx(2 * fast.latency_ms, rel=1e-6)


class TestBatteryModel:
    def test_paper_average_power_scenario(self):
        """Sec. IV-C: 1.03 ms inference every 15 ms -> ~12.8 mW average."""
        average, duty, real_time = duty_cycle_power(1.03e-3, 15e-3, GAP8Config())
        assert real_time
        assert average == pytest.approx(12.8e-3, rel=0.05)
        assert duty == pytest.approx(1.03 / 15, rel=1e-6)

    def test_paper_battery_life_bioformer(self):
        """Sec. IV-C: ~257 h on a 1000 mAh battery for the fastest Bioformer."""
        report = battery_life_hours(1.03e-3, 15e-3, GAP8Config(), BatteryConfig())
        assert report.battery_life_hours == pytest.approx(257, rel=0.05)

    def test_paper_battery_life_temponet(self):
        """TEMPONet misses the 15 ms deadline and only lasts ~54 h."""
        report = battery_life_hours(21.82e-3, 15e-3, GAP8Config(), BatteryConfig())
        assert not report.real_time
        assert report.battery_life_hours == pytest.approx(54, rel=0.05)

    def test_longer_period_extends_life(self):
        fast = battery_life_hours(1e-3, 15e-3, GAP8Config())
        slow = battery_life_hours(1e-3, 150e-3, GAP8Config())
        assert slow.battery_life_hours > fast.battery_life_hours

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            duty_cycle_power(0.0, 1.0, GAP8Config())

    def test_battery_energy(self):
        assert BatteryConfig(capacity_mah=1000, voltage_v=3.3).energy_j == pytest.approx(11880.0)


class TestDeploymentRecord:
    def test_record_fields_and_row(self):
        record = deploy(_config("bio1_10"), quantized_accuracy=0.6469)
        row = record.as_row()
        assert row[0].startswith("Bioformer")
        assert "64.69%" in row[-1]
        assert record.duty_cycle is not None

    def test_skipping_battery_projection(self):
        record = deploy(_config("bio1_10"), inference_period_s=None)
        assert record.duty_cycle is None

    def test_deploy_accepts_model_instances(self):
        record = deploy(bioformer_bio1(patch_size=10))
        assert record.mmacs > 0
