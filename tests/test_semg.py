"""Tests of the synthetic sEMG signal model (repro.data.semg)."""

import numpy as np
import pytest

from repro.data.semg import (
    GestureLibrary,
    SemgConfig,
    SemgSynthesizer,
    SessionConditions,
    SubjectModel,
)


@pytest.fixture(scope="module")
def config():
    return SemgConfig(sampling_rate_hz=500.0, emg_band_hz=(20.0, 200.0))


@pytest.fixture(scope="module")
def synthesizer(config):
    return SemgSynthesizer(config, np.random.default_rng(0))


class TestSemgConfig:
    def test_validate_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SemgConfig(num_channels=0).validate()
        with pytest.raises(ValueError):
            SemgConfig(num_gestures=1).validate()
        with pytest.raises(ValueError):
            SemgConfig(sampling_rate_hz=-1).validate()
        with pytest.raises(ValueError):
            SemgConfig(emg_band_hz=(100.0, 50.0)).validate()

    def test_band_clamped_to_nyquist(self):
        config = SemgConfig(sampling_rate_hz=200.0)
        config.validate()
        assert config.emg_band_hz[1] < 100.0

    def test_defaults_match_ninapro_db6_geometry(self):
        config = SemgConfig()
        assert config.num_channels == 14
        assert config.num_gestures == 8
        assert config.sampling_rate_hz == 2000.0


class TestGestureLibrary:
    def test_rest_has_low_activation(self, config):
        library = GestureLibrary(config, np.random.default_rng(1))
        assert library.activation(0).max() < 0.1

    def test_grasps_share_common_structure(self, config):
        """All grasps derive from a common base, so pairwise distances are
        bounded — gestures are confusable, as in real sEMG."""
        library = GestureLibrary(config, np.random.default_rng(2))
        grasps = library.prototypes[1:]
        base_norm = np.linalg.norm(grasps.mean(axis=0))
        for i in range(len(grasps)):
            for j in range(i + 1, len(grasps)):
                distance = np.linalg.norm(grasps[i] - grasps[j])
                assert distance < 2.5 * base_norm

    def test_grasps_are_distinct(self, config):
        library = GestureLibrary(config, np.random.default_rng(3))
        grasps = library.prototypes[1:]
        for i in range(len(grasps)):
            for j in range(i + 1, len(grasps)):
                assert np.linalg.norm(grasps[i] - grasps[j]) > 1e-3

    def test_more_gestures_than_muscles_supported(self):
        config = SemgConfig(num_muscles=4, num_gestures=10, sampling_rate_hz=500.0)
        config.validate()
        library = GestureLibrary(config, np.random.default_rng(4))
        assert library.prototypes.shape == (10, 4)

    def test_activations_nonnegative(self, config):
        library = GestureLibrary(config, np.random.default_rng(5))
        assert np.all(library.prototypes >= 0)


class TestSubjectAndSession:
    def test_subjects_differ_but_share_template(self, synthesizer):
        subject_a = synthesizer.subject(1, np.random.default_rng(10))
        subject_b = synthesizer.subject(2, np.random.default_rng(11))
        assert not np.allclose(subject_a.mixing, subject_b.mixing)
        # Both stay within a bounded distance of the shared template.
        for subject in (subject_a, subject_b):
            relative = np.linalg.norm(subject.mixing - synthesizer.template_mixing)
            relative /= np.linalg.norm(synthesizer.template_mixing)
            assert relative < 1.0

    def test_signal_quality_in_range(self, synthesizer):
        for seed in range(5):
            subject = synthesizer.subject(seed, np.random.default_rng(seed))
            assert 0.55 <= subject.signal_quality <= 1.0

    def test_session_drift_grows_with_distance(self, synthesizer):
        rng = np.random.default_rng(3)
        near = synthesizer.session(6, reference_session=5, rng=np.random.default_rng(3))
        far = synthesizer.session(10, reference_session=5, rng=np.random.default_rng(3))
        assert np.abs(far.mixing_perturbation).mean() > np.abs(near.mixing_perturbation).mean()
        assert far.extra_noise > near.extra_noise

    def test_session_apply_changes_mixing(self, synthesizer):
        subject = synthesizer.subject(1, np.random.default_rng(0))
        session = synthesizer.session(8, 5, np.random.default_rng(1))
        mixed = session.apply(subject.mixing)
        assert mixed.shape == subject.mixing.shape
        assert not np.allclose(mixed, subject.mixing)


class TestSynthesis:
    def test_repetition_shape_and_dtype(self, synthesizer):
        subject = synthesizer.subject(1, np.random.default_rng(0))
        session = synthesizer.session(1, 5, np.random.default_rng(0))
        signal = synthesizer.synthesize_repetition(subject, session, 3, 0.5, np.random.default_rng(7))
        assert signal.shape == (synthesizer.config.num_channels, 250)
        assert signal.dtype == np.float32
        assert np.all(np.isfinite(signal))

    def test_grasp_has_higher_energy_than_rest(self, synthesizer):
        subject = synthesizer.subject(1, np.random.default_rng(0))
        session = synthesizer.session(1, 5, np.random.default_rng(0))
        rest = synthesizer.synthesize_repetition(subject, session, 0, 0.5, np.random.default_rng(1))
        grasp = synthesizer.synthesize_repetition(subject, session, 3, 0.5, np.random.default_rng(1))
        assert (grasp**2).mean() > 2 * (rest**2).mean()

    def test_deterministic_given_rng(self, synthesizer):
        subject = synthesizer.subject(1, np.random.default_rng(0))
        session = synthesizer.session(1, 5, np.random.default_rng(0))
        a = synthesizer.synthesize_repetition(subject, session, 2, 0.4, np.random.default_rng(42))
        b = synthesizer.synthesize_repetition(subject, session, 2, 0.4, np.random.default_rng(42))
        np.testing.assert_allclose(a, b)

    def test_different_gestures_have_different_channel_profiles(self, synthesizer):
        subject = synthesizer.subject(1, np.random.default_rng(0))
        session = synthesizer.session(1, 5, np.random.default_rng(0))
        profiles = []
        for gesture in (1, 2):
            signal = synthesizer.synthesize_repetition(
                subject, session, gesture, 1.0, np.random.default_rng(5)
            )
            rms = np.sqrt((signal.astype(np.float64)**2).mean(axis=1))
            profiles.append(rms / rms.sum())
        assert np.abs(profiles[0] - profiles[1]).sum() > 0.01

    def test_interference_pattern_band_limited(self, synthesizer):
        carrier = synthesizer._interference_pattern(1000, np.random.default_rng(0))
        spectrum = np.abs(np.fft.rfft(carrier))
        frequencies = np.fft.rfftfreq(1000, 1.0 / synthesizer.config.sampling_rate_hz)
        low, high = synthesizer.config.emg_band_hz
        in_band = spectrum[(frequencies >= low) & (frequencies <= high)].sum()
        out_band = spectrum[(frequencies < low) | (frequencies > high)].sum()
        assert in_band > 10 * out_band
