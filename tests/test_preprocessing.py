"""Tests for the sEMG preprocessing chain (filters, envelopes, scaling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PreprocessingConfig,
    Preprocessor,
    bandpass_filter,
    envelope,
    moving_average,
    mu_law_compress,
    notch_filter,
    rectify,
    standardize,
)

SAMPLING_HZ = 2000.0


def tone(frequency_hz: float, duration_s: float = 1.0, sampling_hz: float = SAMPLING_HZ):
    time = np.arange(int(duration_s * sampling_hz)) / sampling_hz
    return np.sin(2 * np.pi * frequency_hz * time)


def band_power(signal: np.ndarray, frequency_hz: float, sampling_hz: float = SAMPLING_HZ) -> float:
    spectrum = np.abs(np.fft.rfft(signal)) ** 2
    frequencies = np.fft.rfftfreq(signal.shape[-1], d=1.0 / sampling_hz)
    band = (frequencies > frequency_hz - 5) & (frequencies < frequency_hz + 5)
    return float(spectrum[..., band].sum())


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(17)


class TestBandpass:
    def test_passband_preserved_stopband_removed(self):
        mixed = tone(5.0) + tone(100.0) + tone(900.0)
        filtered = bandpass_filter(mixed[None, :], SAMPLING_HZ, 20.0, 500.0)[0]
        assert band_power(filtered, 100.0) > 0.5 * band_power(mixed, 100.0)
        assert band_power(filtered, 5.0) < 0.05 * band_power(mixed, 5.0)
        assert band_power(filtered, 900.0) < 0.05 * band_power(mixed, 900.0)

    def test_high_edge_clipped_below_nyquist(self):
        # A 500 Hz upper edge at 500 Hz sampling would be above Nyquist; the
        # helper clips it instead of failing, as the synthetic presets need.
        signal = np.random.default_rng(0).normal(size=(2, 400))
        filtered = bandpass_filter(signal, sampling_rate_hz=500.0, low_hz=20.0, high_hz=500.0)
        assert filtered.shape == signal.shape
        assert np.all(np.isfinite(filtered))

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            bandpass_filter(np.zeros((1, 100)), SAMPLING_HZ, 300.0, 100.0)
        with pytest.raises(ValueError):
            bandpass_filter(np.zeros((1, 100)), -1.0)

    def test_batch_and_single_shapes(self, rng):
        batch = rng.normal(size=(3, 4, 600))
        assert bandpass_filter(batch, SAMPLING_HZ).shape == batch.shape


class TestNotch:
    def test_removes_power_line_tone(self):
        mixed = tone(50.0) + tone(120.0)
        filtered = notch_filter(mixed[None, :], SAMPLING_HZ, notch_hz=50.0)[0]
        assert band_power(filtered, 50.0) < 0.05 * band_power(mixed, 50.0)
        assert band_power(filtered, 120.0) > 0.5 * band_power(mixed, 120.0)

    def test_invalid_notch_rejected(self):
        with pytest.raises(ValueError):
            notch_filter(np.zeros((1, 100)), SAMPLING_HZ, notch_hz=2000.0)


class TestEnvelopeAndScaling:
    def test_rectify_is_absolute_value(self, rng):
        signal = rng.normal(size=(2, 50))
        np.testing.assert_allclose(rectify(signal), np.abs(signal))

    def test_moving_average_of_constant(self):
        constant = np.full((1, 40), 2.0)
        np.testing.assert_allclose(moving_average(constant, 5), 2.0)

    def test_moving_average_preserves_shape(self, rng):
        signal = rng.normal(size=(3, 2, 77))
        assert moving_average(signal, 9).shape == signal.shape

    def test_moving_average_rejects_bad_window(self, rng):
        with pytest.raises(ValueError):
            moving_average(rng.normal(size=(1, 10)), 0)

    def test_envelope_is_nonnegative_and_smoother(self, rng):
        signal = rng.normal(size=(1, 2000))
        env = envelope(signal, SAMPLING_HZ, smoothing_ms=20.0)
        assert np.all(env >= 0)
        assert np.abs(np.diff(env)).mean() < np.abs(np.diff(np.abs(signal))).mean()

    def test_mu_law_bounded(self, rng):
        compressed = mu_law_compress(rng.normal(scale=100.0, size=(4, 100)))
        assert np.all(np.abs(compressed) <= 1.0 + 1e-12)

    def test_mu_law_zero_signal(self):
        np.testing.assert_allclose(mu_law_compress(np.zeros((2, 10))), 0.0)

    def test_mu_law_rejects_bad_mu(self, rng):
        with pytest.raises(ValueError):
            mu_law_compress(rng.normal(size=(1, 10)), mu=0.0)

    def test_standardize(self, rng):
        signal = rng.normal(loc=3.0, scale=5.0, size=(4, 500))
        scaled = standardize(signal)
        assert abs(scaled.mean()) < 1e-9
        assert scaled.std() == pytest.approx(1.0, abs=1e-6)

    @given(st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_standardize_scale_invariance_property(self, gain):
        rng = np.random.default_rng(3)
        signal = rng.normal(size=(2, 200))
        np.testing.assert_allclose(standardize(signal * gain), standardize(signal), atol=1e-8)


class TestPreprocessor:
    def test_full_chain_shapes_and_finiteness(self, rng):
        config = PreprocessingConfig(sampling_rate_hz=SAMPLING_HZ, apply_envelope=True)
        processed = Preprocessor(config)(rng.normal(size=(14, 4000)))
        assert processed.shape == (14, 4000)
        assert np.all(np.isfinite(processed))

    def test_stages_can_be_disabled(self, rng):
        config = PreprocessingConfig(
            sampling_rate_hz=SAMPLING_HZ,
            apply_bandpass=False,
            apply_notch=False,
            apply_envelope=False,
            apply_standardize=False,
        )
        signal = rng.normal(size=(2, 100))
        np.testing.assert_allclose(Preprocessor(config)(signal), signal)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Preprocessor(PreprocessingConfig(sampling_rate_hz=0.0))
        with pytest.raises(ValueError):
            Preprocessor(PreprocessingConfig(notch_hz=5000.0))

    def test_envelope_output_nonnegative(self, rng):
        config = PreprocessingConfig(
            sampling_rate_hz=SAMPLING_HZ, apply_envelope=True, apply_standardize=False
        )
        processed = Preprocessor(config)(rng.normal(size=(3, 2000)))
        assert np.all(processed >= 0)
