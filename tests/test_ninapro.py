"""Tests of the NinaPro DB6 surrogate dataset, windowing and loaders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    DataLoader,
    NinaProDB6,
    NinaProDB6Config,
    normalize_windows,
    sliding_window_count,
    sliding_windows,
    stratified_subsample,
    subject_split,
)
from repro.data.ninapro import GESTURE_NAMES


class TestWindowing:
    def test_window_count_formula(self):
        assert sliding_window_count(300, 300, 30) == 1
        assert sliding_window_count(330, 300, 30) == 2
        assert sliding_window_count(299, 300, 30) == 0

    @given(
        samples=st.integers(1, 2000),
        window=st.integers(1, 400),
        slide=st.integers(1, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_count_matches_generated_windows(self, samples, window, slide):
        signal = np.zeros((2, samples))
        windows = sliding_windows(signal, window, slide)
        assert windows.shape[0] == sliding_window_count(samples, window, slide)
        if windows.shape[0]:
            assert windows.shape[1:] == (2, window)

    def test_window_contents(self):
        signal = np.arange(20.0).reshape(1, 20)
        windows = sliding_windows(signal, window=5, slide=5)
        np.testing.assert_allclose(windows[1, 0], [5, 6, 7, 8, 9])

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(10), 5, 5)  # 1-D input
        with pytest.raises(ValueError):
            sliding_window_count(10, 0, 1)


class TestArrayDatasetAndLoader:
    def _dataset(self, n=20, classes=4):
        rng = np.random.default_rng(0)
        return ArrayDataset(rng.standard_normal((n, 3, 8)), np.arange(n) % classes)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2, 2)), np.zeros(4))

    def test_class_counts_and_subset(self):
        dataset = self._dataset()
        assert dataset.num_classes == 4
        np.testing.assert_allclose(dataset.class_counts(), [5, 5, 5, 5])
        subset = dataset.subset(np.arange(10))
        assert len(subset) == 10

    def test_concatenate(self):
        combined = ArrayDataset.concatenate([self._dataset(4), self._dataset(6)])
        assert len(combined) == 10

    def test_loader_covers_every_sample_once(self):
        dataset = self._dataset(23)
        loader = DataLoader(dataset, batch_size=5, shuffle=True, rng=np.random.default_rng(0))
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 23
        assert len(loader) == 5

    def test_loader_drop_last(self):
        loader = DataLoader(self._dataset(23), batch_size=5, drop_last=True)
        assert len(loader) == 4
        assert sum(len(labels) for _, labels in loader) == 20

    def test_loader_shuffle_changes_order_but_not_content(self):
        dataset = self._dataset(16)
        loader = DataLoader(dataset, batch_size=16, shuffle=True, rng=np.random.default_rng(1))
        (windows, labels), = list(loader)
        assert sorted(labels.tolist()) == sorted(dataset.labels.tolist())

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)

    def test_normalize_windows_preserves_channel_ratio(self):
        rng = np.random.default_rng(0)
        windows = rng.standard_normal((4, 3, 50))
        windows[:, 0] *= 5.0  # channel 0 much stronger
        normalised = normalize_windows(windows)
        ratio = normalised[:, 0].std(axis=-1) / normalised[:, 1].std(axis=-1)
        assert np.all(ratio > 2.0)
        # Per-window global statistics are standardised.
        np.testing.assert_allclose(normalised.mean(axis=(1, 2)), 0.0, atol=1e-9)
        np.testing.assert_allclose(normalised.std(axis=(1, 2)), 1.0, atol=1e-6)

    def test_stratified_subsample_preserves_classes(self):
        dataset = self._dataset(40, classes=4)
        subsampled = stratified_subsample(dataset, 0.5, np.random.default_rng(0))
        assert set(np.unique(subsampled.labels)) == {0, 1, 2, 3}
        assert len(subsampled) == 20


class TestNinaProConfig:
    def test_paper_geometry(self):
        config = NinaProDB6Config.paper()
        assert config.num_subjects == 10
        assert config.num_sessions == 10
        assert config.num_gestures == 8 == len(GESTURE_NAMES)
        assert config.window_samples == 300  # 150 ms at 2 kHz
        assert config.slide_samples == 30  # 15 ms at 2 kHz
        assert config.training_sessions == (1, 2, 3, 4, 5)
        assert config.testing_sessions == (6, 7, 8, 9, 10)

    def test_small_and_tiny_presets_validate(self):
        for config in (NinaProDB6Config.small(), NinaProDB6Config.tiny()):
            config.validate()
            assert config.num_gestures == 8
            assert len(config.testing_sessions) >= 1

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            NinaProDB6Config(num_subjects=0).validate()
        with pytest.raises(ValueError):
            NinaProDB6Config(training_sessions=(0,)).validate()
        with pytest.raises(ValueError):
            NinaProDB6Config(training_sessions=tuple(range(1, 11))).validate()
        with pytest.raises(ValueError):
            NinaProDB6Config(representation="wavelet").validate()


class TestNinaProDataset:
    def test_session_dataset_geometry(self, tiny_dataset):
        config = tiny_dataset.config
        dataset = tiny_dataset.session_dataset(1, 1)
        assert dataset.windows.shape[1:] == (config.num_channels, config.window_samples)
        assert set(np.unique(dataset.labels)) == set(range(config.num_gestures))
        assert set(dataset.metadata) == {"subject", "session", "repetition"}

    def test_caching_returns_same_object(self, tiny_dataset):
        assert tiny_dataset.session_dataset(1, 1) is tiny_dataset.session_dataset(1, 1)

    def test_training_and_testing_sessions_disjoint(self, tiny_dataset):
        train = tiny_dataset.training_dataset(1)
        test = tiny_dataset.testing_dataset(1)
        assert set(np.unique(train.metadata["session"])).isdisjoint(
            np.unique(test.metadata["session"])
        )

    def test_pretraining_excludes_target_subject(self, tiny_dataset):
        pretrain = tiny_dataset.pretraining_dataset(1)
        assert 1 not in np.unique(pretrain.metadata["subject"])
        assert len(pretrain) > 0

    def test_invalid_subject_or_session_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.session_dataset(99, 1)
        with pytest.raises(ValueError):
            tiny_dataset.session_dataset(1, 99)

    def test_reproducible_across_instances(self):
        config = NinaProDB6Config.tiny()
        a = NinaProDB6(config).session_dataset(1, 1)
        b = NinaProDB6(NinaProDB6Config.tiny()).session_dataset(1, 1)
        np.testing.assert_allclose(a.windows, b.windows)

    def test_different_seeds_differ(self):
        a = NinaProDB6(NinaProDB6Config.tiny(seed=1)).session_dataset(1, 1)
        b = NinaProDB6(NinaProDB6Config.tiny(seed=2)).session_dataset(1, 1)
        assert not np.allclose(a.windows, b.windows)

    def test_input_shape_and_describe(self, tiny_dataset):
        channels, samples = tiny_dataset.input_shape
        assert channels == 14
        assert "subjects" in tiny_dataset.describe()

    def test_subject_split_bundle(self, tiny_dataset, tiny_split):
        assert tiny_split.subject == 1
        assert len(tiny_split.train) > 0 and len(tiny_split.test) > 0
        assert set(tiny_split.test_per_session) == set(tiny_dataset.config.testing_sessions)

    def test_later_sessions_are_harder(self):
        """A simple RMS nearest-centroid classifier degrades on sessions
        farther from training — the structural property behind Fig. 2."""
        dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=1))
        train = dataset.training_dataset(1)
        features = np.sqrt((train.windows**2).mean(axis=-1))
        centroids = np.stack(
            [features[train.labels == c].mean(axis=0) for c in range(8)]
        )

        def session_accuracy(session):
            data = dataset.session_dataset(1, session)
            feats = np.sqrt((data.windows**2).mean(axis=-1))
            predictions = np.argmin(
                ((feats[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1
            )
            return (predictions == data.labels).mean()

        early = np.mean([session_accuracy(6), session_accuracy(7)])
        late = np.mean([session_accuracy(9), session_accuracy(10)])
        assert early > late

    def test_envelope_representation_is_nonnegative_before_normalization(self):
        config = NinaProDB6Config.tiny()
        config.normalize = False
        dataset = NinaProDB6(config)
        windows = dataset.session_dataset(1, 1).windows
        assert np.all(windows >= 0.0)
