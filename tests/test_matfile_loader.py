"""Tests for the real NinaPro ``.mat`` recording loader.

No real NinaPro files exist in this environment, so the tests synthesise
``.mat`` files with the DB6 field layout (``emg``, ``restimulus``,
``rerepetition``) via :func:`scipy.io.savemat` and check that the loader
turns them into the repository's window datasets.
"""

import os

import numpy as np
import pytest
from scipy import io as sp_io

from repro.data import (
    ArrayDataset,
    MatLoaderConfig,
    NinaProMatLoader,
    load_mat_recording,
)
from repro.data.matfile import parse_session_from_filename

SAMPLING_HZ = 500.0  # reduced rate keeps the synthetic files small


def write_fake_recording(
    path,
    num_channels=14,
    gestures=(0, 1, 2),
    segment_samples=400,
    seed=0,
    stimulus_key="restimulus",
    repetition_key="rerepetition",
):
    """Write a DB6-style .mat file with alternating gesture segments."""
    rng = np.random.default_rng(seed)
    stimulus = np.concatenate([np.full(segment_samples, g) for g in gestures])
    emg = rng.normal(size=(stimulus.size, num_channels))
    # Give each gesture a distinct per-channel amplitude signature.
    for gesture in gestures:
        emg[stimulus == gesture] *= 1.0 + 0.5 * gesture
    repetition = np.concatenate(
        [np.full(segment_samples, index + 1) for index in range(len(gestures))]
    )
    sp_io.savemat(
        str(path),
        {"emg": emg, stimulus_key: stimulus.reshape(-1, 1), repetition_key: repetition.reshape(-1, 1)},
    )
    return str(path)


@pytest.fixture()
def loader():
    return NinaProMatLoader(
        MatLoaderConfig(sampling_rate_hz=SAMPLING_HZ, window_ms=200.0, slide_ms=100.0)
    )


class TestFilenameParsing:
    def test_db6_convention(self):
        assert parse_session_from_filename("S3_D2_T1.mat") == (3, 3)
        assert parse_session_from_filename("S10_D5_T2.mat") == (10, 10)
        assert parse_session_from_filename("/data/db6/S1_D1_T1.mat") == (1, 1)

    def test_unknown_name(self):
        assert parse_session_from_filename("recording.mat") == (None, None)


class TestLoadRecording:
    def test_basic_fields(self, tmp_path):
        path = write_fake_recording(tmp_path / "S2_D1_T2.mat")
        recording = load_mat_recording(path)
        assert recording.num_channels == 14
        assert recording.num_samples == 1200
        assert recording.subject == 2 and recording.session == 2
        assert set(recording.gestures_present) == {0, 1, 2}

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_mat_recording("/nonexistent/S1_D1_T1.mat")

    def test_missing_emg_variable(self, tmp_path):
        path = tmp_path / "S1_D1_T1.mat"
        sp_io.savemat(str(path), {"restimulus": np.zeros((10, 1))})
        with pytest.raises(KeyError, match="emg"):
            load_mat_recording(str(path))

    def test_missing_stimulus_variable(self, tmp_path):
        path = tmp_path / "S1_D1_T1.mat"
        sp_io.savemat(str(path), {"emg": np.zeros((10, 4))})
        with pytest.raises(KeyError, match="stimulus"):
            load_mat_recording(str(path))

    def test_stimulus_fallback_key(self, tmp_path):
        path = write_fake_recording(
            tmp_path / "S1_D1_T1.mat", stimulus_key="stimulus", repetition_key="repetition"
        )
        recording = load_mat_recording(path)
        assert recording.num_samples == 1200

    def test_unmapped_gestures_marked(self, tmp_path):
        path = write_fake_recording(tmp_path / "S1_D1_T1.mat", gestures=(0, 40))
        recording = load_mat_recording(path)
        assert -1 in recording.stimulus  # gesture 40 is not in the class map

    def test_custom_class_map(self, tmp_path):
        path = write_fake_recording(tmp_path / "S1_D1_T1.mat", gestures=(0, 40))
        recording = load_mat_recording(path, class_map={0: 0, 40: 1})
        assert set(recording.gestures_present) == {0, 1}


class TestWindowing:
    def test_windows_have_paper_geometry(self, loader, tmp_path):
        path = write_fake_recording(tmp_path / "S1_D1_T1.mat")
        dataset = loader.load_file(path)
        window_samples = loader.config.window_samples
        assert isinstance(dataset, ArrayDataset)
        assert dataset.windows.shape[1:] == (14, window_samples)
        assert len(dataset) > 0
        assert set(np.unique(dataset.labels)) <= {0, 1, 2}

    def test_homogeneous_label_filter(self, tmp_path):
        config = MatLoaderConfig(
            sampling_rate_hz=SAMPLING_HZ,
            window_ms=200.0,
            slide_ms=100.0,
            require_homogeneous_labels=True,
        )
        path = write_fake_recording(tmp_path / "S1_D1_T1.mat")
        strict = NinaProMatLoader(config).load_file(path)
        relaxed_config = MatLoaderConfig(
            sampling_rate_hz=SAMPLING_HZ,
            window_ms=200.0,
            slide_ms=100.0,
            require_homogeneous_labels=False,
        )
        relaxed = NinaProMatLoader(relaxed_config).load_file(path)
        assert len(relaxed) >= len(strict)
        # Strict windows never straddle a gesture boundary, so each window's
        # label set is a single value by construction.

    def test_unmapped_windows_dropped(self, loader, tmp_path):
        path = write_fake_recording(tmp_path / "S1_D1_T1.mat", gestures=(0, 40))
        dataset = loader.load_file(path)
        assert set(np.unique(dataset.labels)) <= {0}

    def test_metadata_carries_subject_and_session(self, loader, tmp_path):
        path = write_fake_recording(tmp_path / "S4_D3_T2.mat")
        dataset = loader.load_file(path)
        assert set(np.unique(dataset.metadata["subject"])) == {4}
        assert set(np.unique(dataset.metadata["session"])) == {6}

    def test_recording_shorter_than_window(self, tmp_path):
        config = MatLoaderConfig(sampling_rate_hz=SAMPLING_HZ, window_ms=10000.0, slide_ms=100.0)
        path = write_fake_recording(tmp_path / "S1_D1_T1.mat", segment_samples=100)
        dataset = NinaProMatLoader(config).load_file(path)
        assert len(dataset) == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NinaProMatLoader(MatLoaderConfig(sampling_rate_hz=0.0))


class TestDirectoryWorkflow:
    def _populate(self, directory, subject=1, sessions=(1, 2, 3, 4, 5, 6)):
        paths = []
        for session in sessions:
            day = (session - 1) // 2 + 1
            time = (session - 1) % 2 + 1
            name = f"S{subject}_D{day}_T{time}.mat"
            paths.append(write_fake_recording(os.path.join(directory, name), seed=session))
        return paths

    def test_discover_filters_by_subject(self, loader, tmp_path):
        self._populate(str(tmp_path), subject=1, sessions=(1, 2))
        self._populate(str(tmp_path), subject=2, sessions=(1,))
        assert len(loader.discover(str(tmp_path))) == 3
        assert len(loader.discover(str(tmp_path), subject=1)) == 2

    def test_discover_missing_directory(self, loader):
        with pytest.raises(FileNotFoundError):
            loader.discover("/nonexistent/db6")

    def test_load_subject_sessions(self, loader, tmp_path):
        self._populate(str(tmp_path), subject=3, sessions=(1, 2, 3))
        sessions = loader.load_subject(str(tmp_path), subject=3)
        assert set(sessions) == {1, 2, 3}
        assert all(len(dataset) > 0 for dataset in sessions.values())

    def test_train_test_split_protocol(self, loader, tmp_path):
        self._populate(str(tmp_path), subject=1, sessions=(1, 2, 3, 4, 5, 6, 7))
        sessions = loader.load_subject(str(tmp_path), subject=1)
        train, test = loader.train_test_split(sessions, training_sessions=(1, 2, 3, 4, 5))
        assert len(train) > 0 and len(test) > 0
        assert set(np.unique(train.metadata["session"])) <= {1, 2, 3, 4, 5}
        assert set(np.unique(test.metadata["session"])) <= {6, 7}

    def test_train_test_split_requires_both_sides(self, loader, tmp_path):
        self._populate(str(tmp_path), subject=1, sessions=(1, 2))
        sessions = loader.load_subject(str(tmp_path), subject=1)
        with pytest.raises(ValueError):
            loader.train_test_split(sessions, training_sessions=(1, 2))
