"""Tests of the per-figure experiment drivers (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_REFERENCE_ACCURACY,
    Scale,
    build_architecture,
    make_context,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_grid_search,
    render_table1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_grid_search,
    run_table1,
    scaled_filter_dimensions,
)
from repro.experiments.table1_gap8 import TABLE1_CONFIGURATIONS


@pytest.fixture(scope="module")
def tiny_context():
    return make_context(Scale.TINY)


class TestContext:
    def test_make_context_scales(self):
        tiny = make_context(Scale.TINY)
        small = make_context(Scale.SMALL, num_subjects=2)
        assert tiny.window_samples < 300
        assert small.dataset.config.num_subjects == 2
        assert tiny.num_classes == 8

    def test_paper_context_geometry(self):
        context = make_context(Scale.PAPER)
        assert context.window_samples == 300
        assert context.protocol.pretrain_epochs == 100
        assert len(context.subjects) == 10

    def test_build_architecture_clamps_patch(self, tiny_context):
        model = build_architecture("bio1", tiny_context, patch_size=300)
        assert model.config.patch_size <= tiny_context.window_samples // 2
        with pytest.raises(KeyError):
            build_architecture("mlp", tiny_context)


class TestFigure2Driver:
    def test_series_and_render(self, tiny_context):
        result = run_figure2(
            tiny_context, architectures=("bio1",), subjects=[1]
        )
        assert ("bio1", False) in result.series and ("bio1", True) in result.series
        assert set(result.series[("bio1", False)]) == set(tiny_context.dataset.config.testing_sessions)
        assert 0.0 <= result.overall[("bio1", True)] <= 1.0
        text = render_figure2(result)
        assert "Fig. 2" in text and "bio1" in text
        # The gain accessor works for included architectures.
        assert isinstance(result.pretraining_gain("bio1"), float)


class TestFigure3Driver:
    def test_per_subject_gains(self, tiny_context):
        result = run_figure3(tiny_context, subjects=[1])
        assert set(result.standard) == {1}
        assert set(result.gains) == {1}
        split = result.gain_by_baseline(0.6)
        assert set(split) == {"weak_subjects", "strong_subjects"}
        assert "Fig. 3" in render_figure3(result)


class TestFigure4Driver:
    def test_scaled_filters_subset_of_paper(self, tiny_context):
        filters = scaled_filter_dimensions(tiny_context)
        assert set(filters).issubset({1, 5, 10, 20, 30})
        assert all(tiny_context.window_samples // f >= 2 for f in filters)

    def test_sweep_and_render(self, tiny_context):
        result = run_figure4(
            tiny_context,
            variants=("bio1",),
            protocols=(False,),
            subjects=[1],
            filter_dimensions=(10, 20),
        )
        assert set(result.accuracy[("bio1", False)]) == {10, 20}
        assert result.best_filter("bio1", False) in (10, 20)
        assert "filter" in render_figure4(result)


class TestFigure5Driver:
    def test_reference_point_cloud(self):
        result = run_figure5()
        labels = [point.label for point in result.points]
        assert any("temponet" in label for label in labels)
        assert len(result.points) >= 10

    def test_bioformers_populate_pareto(self):
        """Paper: apart from pre-trained TEMPONet, the Pareto frontier is
        populated by Bioformers."""
        result = run_figure5()
        frontier = result.pareto_by_macs()
        non_temponet = [p for p in frontier if "temponet" not in p.label]
        assert len(non_temponet) >= len(frontier) - 1
        assert len(non_temponet) >= 2

    def test_mac_reduction_headline(self):
        result = run_figure5()
        assert 4.0 < result.mac_reduction_vs_temponet("bio1", 10) < 6.5

    def test_params_nearly_constant_across_filters(self):
        result = run_figure5()
        params = [
            result.find("bio1", f, True).params for f in (10, 20, 30)
        ]
        assert (max(params) - min(params)) / min(params) < 0.25

    def test_custom_accuracies_override(self):
        result = run_figure5(accuracies={("bio1", 10, True): 0.99})
        assert result.find("bio1", 10, True).accuracy == pytest.approx(0.99)

    def test_render(self):
        text = render_figure5(run_figure5())
        assert "Pareto" in text and "MMAC" in text

    def test_missing_point_raises(self):
        with pytest.raises(KeyError):
            run_figure5().find("bio1", 999, True)


class TestTable1Driver:
    def test_deployment_only_columns(self):
        result = run_table1(measure_accuracy=False)
        assert len(result.rows) == len(TABLE1_CONFIGURATIONS)
        bio1 = result.row("Bio1, wind=10")
        tcn = result.row("TEMPONet")
        assert bio1.memory_kb == pytest.approx(94.2, rel=0.05)
        assert tcn.memory_kb == pytest.approx(461, rel=0.05)
        assert result.energy_ratio() > 6.0
        assert result.memory_ratio() == pytest.approx(4.9, rel=0.15)
        assert not tcn.real_time and bio1.real_time
        assert "Table I" in render_table1(result)

    def test_row_lookup_error(self):
        with pytest.raises(KeyError):
            run_table1(measure_accuracy=False).row("ResNet")

    def test_with_accuracy_measurement(self, tiny_context):
        result = run_table1(
            tiny_context,
            configurations=(("Bio1, wind=10", "bio1", 10),),
            measure_accuracy=True,
        )
        row = result.rows[0]
        assert row.quantized_accuracy is not None
        assert 0.0 <= row.quantized_accuracy <= 1.0
        assert row.float_accuracy is not None


class TestGridSearchDriver:
    def test_small_grid(self, tiny_context):
        result = run_grid_search(tiny_context, depths=(1,), heads=(2, 8), subjects=[1])
        assert set(result.accuracy) == {(1, 2), (1, 8)}
        assert result.params[(1, 8)] > result.params[(1, 2)]
        assert result.best() in result.accuracy
        assert len(result.pareto()) >= 1
        assert "grid" in render_grid_search(result)


class TestPaperReferenceData:
    def test_reference_accuracies_sane(self):
        for key, value in PAPER_REFERENCE_ACCURACY.items():
            assert 0.5 < value < 0.75, key
        # The paper's headline numbers are present.
        assert PAPER_REFERENCE_ACCURACY[("bio1", 10, True)] == pytest.approx(0.6573)
        assert PAPER_REFERENCE_ACCURACY[("temponet", 0, False)] == pytest.approx(0.65)
