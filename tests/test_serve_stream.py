"""Streaming-session tests: windowing math and majority-vote smoothing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import StreamWindower, sliding_window_count, sliding_windows
from repro.serve import InferenceServer, MajorityVoter, Priority, StreamSession


# --------------------------------------------------------------------- #
# Incremental windowing (the data-layer substrate of the stream)
# --------------------------------------------------------------------- #
class TestStreamWindower:
    @given(
        total=st.integers(min_value=0, max_value=600),
        window=st.integers(min_value=1, max_value=50),
        slide=st.integers(min_value=1, max_value=50),
        chunk=st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=40, deadline=None)
    def test_emission_count_matches_offline_math(self, total, window, slide, chunk):
        signal = np.arange(2 * total, dtype=np.float64).reshape(2, total)
        windower = StreamWindower(window, slide, num_channels=2)
        emitted = 0
        for start in range(0, total, chunk):
            emitted += windower.push(signal[:, start : start + chunk]).shape[0]
        assert emitted == sliding_window_count(total, window, slide)
        assert windower.windows_emitted == emitted
        assert windower.samples_seen == total

    def test_streamed_windows_match_offline_segmentation_bitwise(self):
        rng = np.random.default_rng(3)
        signal = rng.normal(size=(4, 321))
        offline = sliding_windows(signal, window=30, slide=7)
        windower = StreamWindower(30, 7, num_channels=4)
        streamed = [windower.push(signal[:, s : s + 41]) for s in range(0, 321, 41)]
        streamed = np.concatenate([w for w in streamed if w.shape[0]], axis=0)
        np.testing.assert_array_equal(streamed, offline)

    def test_single_channel_vector_accepted(self):
        windower = StreamWindower(4, 2, num_channels=1)
        windows = windower.push(np.arange(10.0))
        assert windows.shape == (4, 1, 4)

    def test_channel_mismatch_rejected(self):
        windower = StreamWindower(4, 2, num_channels=3)
        with pytest.raises(ValueError, match="chunk"):
            windower.push(np.zeros((2, 10)))

    def test_reset_forgets_buffer(self):
        windower = StreamWindower(5, 5, num_channels=1)
        windower.push(np.zeros((1, 7)))
        windower.reset()
        assert windower.pending_samples == 0
        assert windower.push(np.zeros((1, 4))).shape[0] == 0


# --------------------------------------------------------------------- #
# Majority-vote smoothing
# --------------------------------------------------------------------- #
class TestMajorityVoter:
    def test_hand_computed_sequence(self):
        # History 3; votes over the trailing window, ties -> smallest label.
        voter = MajorityVoter(history=3)
        sequence = [2, 2, 5, 5, 5, 1, 0, 0]
        #   window:  [2] [2,2] [2,2,5] [2,5,5] [5,5,5] [5,5,1] [5,1,0] [1,0,0]
        expected = [2, 2, 2, 5, 5, 5, 0, 0]
        assert [voter.vote(label) for label in sequence] == expected

    def test_single_spurious_window_is_suppressed(self):
        voter = MajorityVoter(history=5)
        labels = [3, 3, 3, 7, 3, 3]
        smoothed = [voter.vote(label) for label in labels]
        assert smoothed == [3] * 6

    def test_history_one_disables_smoothing(self):
        voter = MajorityVoter(history=1)
        labels = [4, 1, 1, 6]
        assert [voter.vote(label) for label in labels] == labels

    def test_tie_breaks_toward_smallest_label(self):
        voter = MajorityVoter(history=4)
        for label in (9, 9, 2, 2):
            smoothed = voter.vote(label)
        assert smoothed == 2

    def test_rejects_non_positive_history(self):
        with pytest.raises(ValueError):
            MajorityVoter(history=0)

    def test_history_is_frozen_after_construction(self):
        voter = MajorityVoter(history=3)
        assert voter.history == 3
        with pytest.raises(AttributeError):
            voter.history = 7
        # __slots__: arbitrary attributes (e.g. a typoed knob) don't stick.
        with pytest.raises(AttributeError):
            voter.histroy = 7

    def test_three_way_tie_smallest_wins(self):
        voter = MajorityVoter(history=3)
        for label in (7, 4, 2):
            smoothed = voter.vote(label)
        assert smoothed == 2

    def test_tie_break_is_content_not_order(self):
        # The winner of a tied window depends only on *which* labels tied,
        # never on their arrival order — the evaluator's vote-depth sweep
        # replays recorded labels and must land on identical decisions.
        import itertools

        for ordering in itertools.permutations((9, 9, 2, 2)):
            voter = MajorityVoter(history=4)
            for label in ordering:
                smoothed = voter.vote(label)
            assert smoothed == 2, ordering

    def test_depth_one_is_argmax_passthrough_from_any_state(self):
        # Depth 1 must echo every raw label even mid-stream after resets:
        # the sweep's depth-1 row *is* the raw (window) accuracy.
        voter = MajorityVoter(history=1)
        labels = [5, 0, 3, 3, 0, 7]
        assert [voter.vote(label) for label in labels] == labels
        voter.reset()
        assert voter.vote(2) == 2

    def test_partial_history_votes_are_well_defined(self):
        # Before the window fills, the vote runs over what exists; the
        # very first vote is always the first label.
        voter = MajorityVoter(history=9)
        assert voter.vote(6) == 6
        assert voter.vote(4) == 4  # tie {6: 1, 4: 1} -> smallest
        assert voter.vote(6) == 6

    def test_recent_returns_immutable_tuple(self):
        voter = MajorityVoter(history=3)
        for label in (4, 1, 1):
            voter.vote(label)
        window = voter.recent
        assert window == (4, 1, 1)
        assert isinstance(window, tuple)
        # The returned view never aliases the live deque.
        voter.vote(9)
        assert window == (4, 1, 1)
        assert voter.recent == (1, 1, 9)

    def test_state_round_trip_preserves_future_votes(self):
        voter = MajorityVoter(history=3)
        for label in (2, 2, 5):
            voter.vote(label)
        clone = MajorityVoter(history=3)
        clone.load_state(voter.state())
        tail = [7, 7, 5, 5]
        assert [clone.vote(l) for l in tail] == [voter.vote(l) for l in tail]

    def test_state_is_json_friendly(self):
        import json

        voter = MajorityVoter(history=4)
        voter.vote(3)
        state = json.loads(json.dumps(voter.state()))
        clone = MajorityVoter(history=4)
        clone.load_state(state)
        assert clone.recent == (3,)

    def test_load_state_rejects_history_mismatch(self):
        voter = MajorityVoter(history=3)
        voter.vote(1)
        other = MajorityVoter(history=5)
        with pytest.raises(ValueError, match="history"):
            other.load_state(voter.state())

    def test_load_state_rejects_overlong_window(self):
        voter = MajorityVoter(history=2)
        with pytest.raises(ValueError, match="2 labels|history"):
            voter.load_state({"history": 2, "recent": [1, 2, 3]})


# --------------------------------------------------------------------- #
# StreamSession end-to-end
# --------------------------------------------------------------------- #
def label_by_mean(windows: np.ndarray) -> np.ndarray:
    """Deterministic toy classifier: label = sign bucket of the window mean."""
    means = windows.mean(axis=(1, 2))
    return (means > 0).astype(np.int64)


class TestStreamSession:
    def test_decision_count_matches_windowing_math(self):
        rng = np.random.default_rng(11)
        session = StreamSession(label_by_mean, window=40, slide=10, num_channels=3)
        signal = rng.normal(size=(3, 507))
        decisions = session.run(signal, chunk_size=53)
        assert len(decisions) == sliding_window_count(507, 40, 10)
        assert [d.window_index for d in decisions] == list(range(len(decisions)))
        assert session.windows_classified == len(decisions)

    def test_smoothing_matches_manual_vote_replay(self):
        rng = np.random.default_rng(13)
        session = StreamSession(
            label_by_mean, window=20, slide=5, num_channels=2, smoothing=3
        )
        session.run(rng.normal(size=(2, 300)), chunk_size=17)
        raw = session.labels(smoothed=False)
        replay = MajorityVoter(history=3)
        expected = [replay.vote(int(label)) for label in raw]
        assert session.labels(smoothed=True).tolist() == expected

    def test_short_chunks_emit_nothing_until_window_completes(self):
        session = StreamSession(label_by_mean, window=50, slide=50, num_channels=1)
        assert session.push(np.zeros((1, 30))) == []
        assert session.current_label is None
        produced = session.push(np.ones((1, 30)))
        assert len(produced) == 1
        assert session.current_label == produced[0].smoothed_label

    def test_preprocessor_applied_before_classification(self):
        seen = {}

        def spy_preprocessor(windows):
            seen["shape"] = windows.shape
            return windows * 0.0  # force every mean to 0 -> label 0

        session = StreamSession(
            label_by_mean,
            window=10,
            slide=10,
            num_channels=2,
            preprocessor=spy_preprocessor,
        )
        decisions = session.push(np.ones((2, 30)))
        assert seen["shape"] == (3, 2, 10)
        assert [d.label for d in decisions] == [0, 0, 0]

    def test_run_accepts_1d_single_channel_signal(self):
        """Regression: ``run`` sliced axis 0 of a 1-D signal (the channel
        axis after ``push``'s lift), silently feeding wrong chunks."""
        signal = np.arange(200.0)
        flat = StreamSession(label_by_mean, window=20, slide=10, num_channels=1)
        flat_decisions = flat.run(signal, chunk_size=33)
        lifted = StreamSession(label_by_mean, window=20, slide=10, num_channels=1)
        lifted_decisions = lifted.run(signal[None, :], chunk_size=33)
        assert len(flat_decisions) == sliding_window_count(200, 20, 10)
        assert flat.samples_seen == 200
        assert [d.label for d in flat_decisions] == [d.label for d in lifted_decisions]

    def test_reset_clears_state(self):
        session = StreamSession(label_by_mean, window=10, slide=5, num_channels=1)
        session.push(np.ones((1, 25)))
        session.reset()
        assert session.windows_classified == 0
        assert session.samples_seen == 0
        assert session.current_label is None

    @pytest.mark.parametrize("chunk_size", [0, -1, -64])
    def test_run_rejects_non_positive_chunk_size(self, chunk_size):
        """Regression: ``chunk_size=0`` made ``range(0, n, 0)`` raise an
        opaque ``ValueError`` from ``range`` (and a negative chunk silently
        produced zero decisions); ``run`` now validates up front."""
        session = StreamSession(label_by_mean, window=10, slide=5, num_channels=1)
        with pytest.raises(ValueError, match="chunk_size"):
            session.run(np.zeros((1, 100)), chunk_size=chunk_size)
        # Nothing was consumed by the rejected call.
        assert session.samples_seen == 0

    def test_stream_through_inference_server(self):
        rng = np.random.default_rng(17)
        with InferenceServer(
            "bio1",
            "float",
            patch_size=10,
            model_kwargs=dict(num_channels=4, window_samples=60, seed=11),
            max_batch_size=8,
        ) as server:
            session = server.open_stream(slide=15, smoothing=3)
            decisions = session.run(rng.normal(size=(4, 400)), chunk_size=64)
        assert len(decisions) == sliding_window_count(400, 60, 15)
        assert all(0 <= d.label < 8 for d in decisions)
        assert all(0 <= d.smoothed_label < 8 for d in decisions)

    def test_stream_classifies_at_high_priority(self):
        rng = np.random.default_rng(19)
        with InferenceServer(
            "bio1",
            "float",
            patch_size=10,
            model_kwargs=dict(num_channels=4, window_samples=60, seed=11),
            max_batch_size=8,
        ) as server:
            session = server.open_stream(slide=30, smoothing=1)
            session.run(rng.normal(size=(4, 240)), chunk_size=60)
            by_priority = server.stats.by_priority
        # Every stream window was served at HIGH priority, so a loaded
        # server batches live sessions ahead of queued bulk scoring.
        assert by_priority.get(int(Priority.HIGH), 0) == sliding_window_count(240, 60, 30)
        assert int(Priority.LOW) not in by_priority

    def test_push_rejects_channel_mismatch_before_windowing(self):
        def classify(windows):
            return np.zeros(windows.shape[0], dtype=np.int64)

        session = StreamSession(classify, window=60, slide=30, num_channels=4)
        with pytest.raises(ValueError, match="expects 4 channel"):
            session.push(np.zeros((3, 100)))
        with pytest.raises(ValueError, match="expects 4 channel"):
            session.push(np.zeros(100))  # 1-D chunk implies 1 channel
        with pytest.raises(ValueError, match="channel"):
            session.push(np.zeros((4, 2, 50)))  # 3-D chunk is never valid
        # The rejected chunks never reached the windower's buffer.
        assert session.samples_seen == 0
        session.push(np.zeros((4, 100)))
        assert session.samples_seen == 100

    def test_push_accepts_1d_chunk_for_single_channel_session(self):
        def classify(windows):
            return np.zeros(windows.shape[0], dtype=np.int64)

        session = StreamSession(classify, window=20, slide=10, num_channels=1)
        decisions = session.push(np.zeros(25))
        assert len(decisions) == 1
        assert session.samples_seen == 25

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_push_rejects_non_finite_chunks(self, poison):
        """A raw-session user gets the same typed admission error the
        server uses — one NaN sample would otherwise be windowed into up
        to window//slide consecutive windows and poison that many votes."""

        def classify(windows):
            return np.zeros(windows.shape[0], dtype=np.int64)

        session = StreamSession(classify, window=20, slide=10, num_channels=2)
        chunk = np.ones((2, 30))
        chunk[1, 7] = poison
        with pytest.raises(ValueError, match="non-finite"):
            session.push(chunk)
        # The rejected chunk never reached the windower's buffer.
        assert session.samples_seen == 0
        session.push(np.ones((2, 30)))
        assert session.samples_seen == 30

    def test_push_rejects_unsafe_dtype(self):
        def classify(windows):
            return np.zeros(windows.shape[0], dtype=np.int64)

        session = StreamSession(classify, window=10, slide=5, num_channels=1)
        with pytest.raises(ValueError, match="dtype"):
            session.push(np.array(["a", "b", "c"]))
        assert session.samples_seen == 0
