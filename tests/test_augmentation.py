"""Tests for the sEMG window augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CHANNEL_FILL_VALUE,
    Augmenter,
    AugmentationConfig,
    amplitude_scale,
    channel_dropout,
    channel_shift,
    jitter,
    magnitude_warp,
    time_shift,
    time_warp,
)

ALL_TRANSFORMS = [
    jitter,
    amplitude_scale,
    channel_dropout,
    channel_shift,
    time_shift,
    time_warp,
    magnitude_warp,
]


@pytest.fixture()
def rng():
    return np.random.default_rng(23)


@pytest.fixture()
def windows(rng):
    return rng.normal(size=(10, 6, 80))


class TestIndividualTransforms:
    @pytest.mark.parametrize("transform", ALL_TRANSFORMS)
    def test_shape_preserved(self, transform, windows, rng):
        assert transform(windows, rng).shape == windows.shape

    @pytest.mark.parametrize("transform", ALL_TRANSFORMS)
    def test_input_not_modified(self, transform, windows, rng):
        original = windows.copy()
        transform(windows, rng)
        np.testing.assert_array_equal(windows, original)

    @pytest.mark.parametrize("transform", ALL_TRANSFORMS)
    def test_output_finite(self, transform, windows, rng):
        assert np.all(np.isfinite(transform(windows, rng)))

    def test_jitter_noise_level(self, windows, rng):
        noisy = jitter(windows, rng, sigma=0.1)
        residual = noisy - windows
        assert residual.std() == pytest.approx(0.1, rel=0.15)

    def test_amplitude_scale_keeps_sign_structure(self, windows, rng):
        scaled = amplitude_scale(windows, rng, sigma=0.05)
        agreement = np.mean(np.sign(scaled) == np.sign(windows))
        assert agreement > 0.99

    def test_channel_dropout_zeroes_whole_channels(self, windows, rng):
        dropped = channel_dropout(windows, rng, probability=0.5)
        channel_energy = np.abs(dropped).sum(axis=-1)
        zeroed = channel_energy == 0.0
        assert zeroed.any()
        # A zeroed channel must be zero across every sample.
        for window_index, channel_index in zip(*np.nonzero(zeroed)):
            np.testing.assert_array_equal(dropped[window_index, channel_index], 0.0)

    def test_channel_dropout_probability_validation(self, windows, rng):
        with pytest.raises(ValueError):
            channel_dropout(windows, rng, probability=1.0)

    def test_channel_shift_is_permutation_of_channels(self, windows, rng):
        shifted = channel_shift(windows, rng, max_shift=2)
        np.testing.assert_allclose(
            np.sort(np.abs(shifted).sum(axis=-1), axis=1),
            np.sort(np.abs(windows).sum(axis=-1), axis=1),
            rtol=1e-10,
        )

    def test_channel_shift_zero_is_identity(self, windows, rng):
        np.testing.assert_array_equal(channel_shift(windows, rng, max_shift=0), windows)

    def test_time_shift_preserves_sample_multiset(self, windows, rng):
        shifted = time_shift(windows, rng, max_fraction=0.2)
        np.testing.assert_allclose(
            np.sort(shifted, axis=-1), np.sort(windows, axis=-1), rtol=1e-10
        )

    def test_time_warp_bounds_validation(self, windows, rng):
        with pytest.raises(ValueError):
            time_warp(windows, rng, max_speed_change=1.0)

    def test_magnitude_warp_knots_validation(self, windows, rng):
        with pytest.raises(ValueError):
            magnitude_warp(windows, rng, num_knots=1)

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError):
            jitter(rng.normal(size=(4, 80)), rng)

    @given(st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_jitter_scales_with_sigma_property(self, sigma):
        rng = np.random.default_rng(1)
        windows = np.zeros((4, 3, 200))
        noisy = jitter(windows, rng, sigma=sigma)
        assert noisy.std() == pytest.approx(sigma, rel=0.25)


class TestAugmenter:
    def test_reproducible_given_seed(self, windows):
        config = AugmentationConfig(apply_probability=1.0)
        first = Augmenter(config, seed=5)(windows)
        second = Augmenter(config, seed=5)(windows)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, windows):
        config = AugmentationConfig(apply_probability=1.0)
        first = Augmenter(config, seed=1)(windows)
        second = Augmenter(config, seed=2)(windows)
        assert not np.allclose(first, second)

    def test_zero_probability_is_identity(self, windows):
        config = AugmentationConfig(apply_probability=0.0)
        np.testing.assert_array_equal(Augmenter(config)(windows), windows)

    def test_transform_subset_selection(self, windows):
        config = AugmentationConfig(apply_probability=1.0, transforms=("jitter",))
        augmented = Augmenter(config, seed=0)(windows)
        # Jitter alone keeps the shape and changes the values everywhere.
        assert augmented.shape == windows.shape
        assert not np.allclose(augmented, windows)

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError, match="unknown transforms"):
            Augmenter(AugmentationConfig(transforms=("not_a_transform",)))

    def test_available_lists_all(self):
        assert len(Augmenter().available()) == 7

    def test_augment_dataset_copies(self, windows):
        labels = np.arange(10) % 8
        augmenter = Augmenter(AugmentationConfig(apply_probability=1.0), seed=0)
        augmented_windows, augmented_labels = augmenter.augment_dataset(windows, labels, copies=2)
        assert augmented_windows.shape == (30, 6, 80)
        np.testing.assert_array_equal(augmented_labels, np.concatenate([labels] * 3))
        np.testing.assert_array_equal(augmented_windows[:10], windows)

    def test_augment_dataset_zero_copies(self, windows):
        labels = np.zeros(10, dtype=int)
        augmented_windows, augmented_labels = Augmenter().augment_dataset(windows, labels, copies=0)
        np.testing.assert_array_equal(augmented_windows, windows)
        assert len(augmented_labels) == 10

    def test_augment_dataset_negative_copies_rejected(self, windows):
        with pytest.raises(ValueError):
            Augmenter().augment_dataset(windows, np.zeros(10, dtype=int), copies=-1)


class TestSeedDeterminism:
    """The contract the evaluation harness builds on: same seed ->
    bitwise-identical corrupted batch, no global-RNG leakage anywhere."""

    @pytest.mark.parametrize("transform", ALL_TRANSFORMS)
    def test_same_seed_is_bitwise_identical(self, transform, windows):
        first = transform(windows, np.random.default_rng(77))
        second = transform(windows, np.random.default_rng(77))
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("transform", ALL_TRANSFORMS)
    def test_different_seeds_differ(self, transform, windows):
        first = transform(windows, np.random.default_rng(77))
        second = transform(windows, np.random.default_rng(78))
        # channel_shift/time_shift draw small integers, so a single pair
        # of seeds can coincide per window; the batch as a whole must not.
        assert not np.array_equal(first, second)

    @pytest.mark.parametrize("transform", ALL_TRANSFORMS)
    def test_global_numpy_state_is_never_touched(self, transform, windows):
        np.random.seed(123)
        before = np.random.get_state()[1].copy()
        transform(windows, np.random.default_rng(0))
        after = np.random.get_state()[1]
        assert np.array_equal(before, after)

    def test_augmenter_same_seed_is_bitwise_identical(self, windows):
        first = Augmenter(seed=5)(windows)
        second = Augmenter(seed=5)(windows)
        assert np.array_equal(first, second)

    def test_channel_dropout_fills_with_shared_constant(self, windows):
        shifted = windows + 10.0  # keep every clean sample off the fill value
        dropped = channel_dropout(shifted, np.random.default_rng(3), probability=0.5)
        changed = dropped != shifted
        assert changed.any()
        assert np.all(dropped[changed] == CHANNEL_FILL_VALUE)
