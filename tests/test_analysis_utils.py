"""Tests of the analysis helpers (Pareto) and shared utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ParetoPoint, is_dominated, pareto_frontier
from repro.utils import derive_rng, format_table
from repro.utils.rng import SeedSequence


class TestPareto:
    def _points(self):
        return [
            ParetoPoint("cheap-bad", cost=1.0, accuracy=0.5),
            ParetoPoint("mid", cost=2.0, accuracy=0.7),
            ParetoPoint("dominated", cost=3.0, accuracy=0.6),
            ParetoPoint("expensive-good", cost=5.0, accuracy=0.9),
        ]

    def test_frontier_excludes_dominated(self):
        frontier = pareto_frontier(self._points())
        labels = [point.label for point in frontier]
        assert "dominated" not in labels
        assert {"cheap-bad", "mid", "expensive-good"} == set(labels)

    def test_frontier_sorted_by_cost(self):
        frontier = pareto_frontier(self._points())
        costs = [point.cost for point in frontier]
        assert costs == sorted(costs)

    def test_is_dominated(self):
        points = self._points()
        assert is_dominated(points[2], points)
        assert not is_dominated(points[3], points)

    def test_duplicate_points_not_self_dominated(self):
        twin = [ParetoPoint("a", 1.0, 0.5), ParetoPoint("b", 1.0, 0.5)]
        assert len(pareto_frontier(twin)) == 2

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.0, 1.0)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_frontier_property_no_point_dominates_a_frontier_point(self, raw):
        points = [ParetoPoint(str(i), cost, acc) for i, (cost, acc) in enumerate(raw)]
        frontier = pareto_frontier(points)
        assert frontier, "frontier of a non-empty set is non-empty"
        for member in frontier:
            assert not is_dominated(member, points)


class TestRngUtils:
    def test_derive_rng_deterministic(self):
        a = derive_rng("dataset", 3, seed=7).random(5)
        b = derive_rng("dataset", 3, seed=7).random(5)
        np.testing.assert_allclose(a, b)

    def test_derive_rng_keys_independent(self):
        a = derive_rng("dataset", 1, seed=7).random(5)
        b = derive_rng("dataset", 2, seed=7).random(5)
        assert not np.allclose(a, b)

    def test_seed_sequence_spawn(self):
        parent = SeedSequence(3)
        child_a = parent.spawn("model")
        child_b = parent.spawn("model")
        assert child_a.seed == child_b.seed
        assert parent.spawn("data").seed != child_a.seed

    def test_global_seed(self):
        from repro.utils.rng import global_rng, set_global_seed

        set_global_seed(11)
        a = global_rng().random(3)
        set_global_seed(11)
        np.testing.assert_allclose(global_rng().random(3), a)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data lines have the same rendered width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
