"""Tests of metrics, the training loop and the paper's protocols."""

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset
from repro.nn import Tensor
from repro.training import (
    ClassificationReport,
    ProtocolConfig,
    Trainer,
    TrainingConfig,
    accuracy,
    confusion_matrix,
    evaluate,
    macro_f1,
    per_class_accuracy,
    pretrain_inter_subject,
    run_two_step_protocol,
    train_subject_specific,
)
from repro.training.protocol import finetune_subject


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_confusion_matrix_contents(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1 and matrix[2, 1] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_per_class_accuracy_handles_empty_class(self):
        matrix = np.array([[2, 0, 0], [0, 3, 1], [0, 0, 0]])
        recall = per_class_accuracy(matrix)
        np.testing.assert_allclose(recall, [1.0, 0.75, 0.0])

    def test_macro_f1_perfect_and_zero(self):
        perfect = np.eye(3, dtype=int) * 5
        assert macro_f1(perfect) == pytest.approx(1.0)
        assert macro_f1(np.zeros((3, 3), dtype=int)) == 0.0

    def test_classification_report_summary(self):
        report = ClassificationReport(accuracy=0.8, confusion=np.eye(2, dtype=int), loss=0.5)
        summary = report.summary()
        assert summary["accuracy"] == 0.8 and "loss" in summary and "macro_f1" in summary


def _linearly_separable_dataset(n=120, channels=4, samples=16, classes=3, seed=0):
    """Windows whose per-channel energy encodes the class — easily learnable."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=n)
    windows = 0.1 * rng.standard_normal((n, channels, samples))
    for index, label in enumerate(labels):
        windows[index, label % channels] += 1.0 + label
    return ArrayDataset(windows, labels)


class TestTrainer:
    def test_loss_decreases_and_accuracy_improves(self, rng):
        dataset = _linearly_separable_dataset()
        model = nn.Sequential(
            nn.Flatten(),
            nn.Linear(4 * 16, 32, rng=rng),
            nn.ReLU(),
            nn.Linear(32, 3, rng=rng),
        )
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        trainer = Trainer(model, optimizer, config=TrainingConfig(epochs=8, batch_size=16), rng=rng)
        history = trainer.fit(dataset)
        assert history.losses[-1] < history.losses[0]
        assert history.final_train_accuracy > 0.8
        assert len(history.records) == 8

    def test_validation_accuracy_recorded(self, rng):
        dataset = _linearly_separable_dataset(60)
        model = nn.Sequential(nn.Flatten(), nn.Linear(64, 3, rng=rng))
        trainer = Trainer(
            model,
            nn.Adam(model.parameters(), lr=1e-2),
            config=TrainingConfig(epochs=2, batch_size=16),
            rng=rng,
        )
        history = trainer.fit(dataset, validation_dataset=dataset, num_classes=3)
        assert all(record.validation_accuracy is not None for record in history.records)

    def test_scheduler_drives_learning_rate(self, rng):
        dataset = _linearly_separable_dataset(40)
        model = nn.Sequential(nn.Flatten(), nn.Linear(64, 3, rng=rng))
        optimizer = nn.Adam(model.parameters(), lr=1.0)
        scheduler = nn.StepDecay(optimizer, base_lr=1e-2, step_size=1, gamma=0.5)
        trainer = Trainer(model, optimizer, scheduler, TrainingConfig(epochs=3, batch_size=20), rng=rng)
        history = trainer.fit(dataset)
        np.testing.assert_allclose(history.learning_rates, [1e-2, 5e-3, 2.5e-3])

    def test_evaluate_report(self, rng):
        dataset = _linearly_separable_dataset(30)
        model = nn.Sequential(nn.Flatten(), nn.Linear(64, 3, rng=rng))
        report = evaluate(model, dataset, num_classes=3, loss_function=nn.CrossEntropyLoss())
        assert 0.0 <= report.accuracy <= 1.0
        assert report.confusion.shape == (3, 3)
        assert report.confusion.sum() == 30
        assert report.loss is not None


class TestProtocolConfig:
    def test_paper_defaults(self):
        config = ProtocolConfig.paper()
        assert config.pretrain_epochs == 100
        assert config.finetune_epochs == 20
        assert config.pretrain_peak_lr == pytest.approx(5e-4)
        assert config.pretrain_warmup_start_lr == pytest.approx(1e-7)
        assert config.finetune_lr_decay_epoch == 10
        assert config.finetune_lr_decay_factor == pytest.approx(0.1)

    def test_reduced_presets_keep_structure(self):
        for config in (ProtocolConfig.small(), ProtocolConfig.tiny()):
            assert config.pretrain_epochs >= 1
            assert config.finetune_epochs >= 1
            assert config.standard_epochs >= 1


class TestProtocols:
    def test_standard_training_produces_result(self, tiny_dataset, tiny_split):
        from repro.models import bioformer_bio1

        config = tiny_dataset.config
        model = bioformer_bio1(
            patch_size=10, window_samples=config.window_samples, num_channels=14
        )
        outcome = train_subject_specific(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
        assert outcome.protocol == "standard"
        assert 0.0 <= outcome.test_accuracy <= 1.0
        assert set(outcome.per_session_accuracy) == set(config.testing_sessions)
        assert outcome.train_history is not None

    def test_two_step_protocol_runs_and_reuses_pretrained_state(self, tiny_dataset, tiny_split):
        from repro.models import bioformer_bio2

        config = tiny_dataset.config
        protocol = ProtocolConfig.tiny()
        model = bioformer_bio2(
            patch_size=10, window_samples=config.window_samples, num_channels=14
        )
        outcome = run_two_step_protocol(model, tiny_split, protocol, num_classes=8)
        assert outcome.protocol == "pretrain+finetune"
        assert outcome.pretrain_history is not None

        # Reusing a pre-trained state skips the pre-training phase entirely.
        reuse_model = bioformer_bio2(
            patch_size=10, window_samples=config.window_samples, num_channels=14
        )
        reused = run_two_step_protocol(
            reuse_model,
            tiny_split,
            protocol,
            num_classes=8,
            pretrained_state=model.state_dict(),
        )
        assert reused.pretrain_history is None

    def test_pretraining_requires_data(self, tiny_split):
        from repro.models import bioformer_bio1

        empty = ArrayDataset(np.empty((0, 14, 40)), np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            pretrain_inter_subject(
                bioformer_bio1(patch_size=10, window_samples=40), empty, ProtocolConfig.tiny(), 8
            )

    def test_finetune_uses_step_decay(self, tiny_dataset, tiny_split):
        from repro.models import bioformer_bio1

        model = bioformer_bio1(patch_size=10, window_samples=tiny_dataset.config.window_samples)
        protocol = ProtocolConfig(
            finetune_epochs=2, finetune_lr=1e-3, finetune_lr_decay_epoch=1, batch_size=32
        )
        history = finetune_subject(model, tiny_split.train, protocol, 8)
        assert history.learning_rates[0] == pytest.approx(1e-3)
        assert history.learning_rates[1] == pytest.approx(1e-4)

    def test_session_series_sorted(self, tiny_dataset, tiny_split):
        from repro.models import bioformer_bio1

        model = bioformer_bio1(patch_size=10, window_samples=tiny_dataset.config.window_samples)
        outcome = train_subject_specific(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
        assert list(outcome.session_series()) == sorted(outcome.per_session_accuracy)
