"""Bitwise pins for the batched integer GEMM path.

The int8 hot path lowers ``conv1d`` (via im2col), ``linear`` and the
attention ``matmul`` onto one shared integer GEMM primitive with the
requantiser applied once per output tile.  Integer arithmetic is exact, so
the GEMM schedule must be *bitwise identical* to the per-op einsum kernels
it replaces — these tests pin that equality (``assert_array_equal``, never
a tolerance) across every registry-reachable architecture, both
nonlinearity op sets, and batch sizes 1/3/8/16, plus batched-vs-single
invariance and the tile metadata the lowering pass precomputes.
"""

import numpy as np
import pytest

from repro.deploy import IntegerGraphExecutor, lower_to_int8, trace_model
from repro.deploy.int_engine import _im2col, _int_conv1d, apply_requant, int_gemm, requantize
from repro.deploy.lowering import GemmTileInfo, quantize_multiplier
from repro.models import build_model
from repro.nn.tensor import Tensor, inference_mode

GEOMETRY = dict(num_channels=4, window_samples=60, seed=11)

#: Every registry-reachable (architecture, patch_size) pair; temponet has no
#: patch size knob.
CONFIGS = [
    ("bio1", 10),
    ("bio1", 20),
    ("bio2", 10),
    ("bio2", 20),
    ("temponet", None),
]

BATCH_SIZES = [1, 3, 8, 16]


def config_id(config):
    arch, patch = config
    return arch if patch is None else f"{arch}-p{patch}"


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(23)


@pytest.fixture(scope="module", params=CONFIGS, ids=config_id)
def quantized(request):
    """One lowered graph per config (tables present; flags pick the op set)."""
    arch, patch = request.param
    kwargs = dict(GEOMETRY)
    if patch is not None:
        kwargs["patch_size"] = patch
    model = build_model(arch, **kwargs).eval()
    calibration = np.random.default_rng(5).normal(size=(16, 4, 60))
    return lower_to_int8(trace_model(model), calibration, use_lut=True)


@pytest.fixture(scope="module")
def windows():
    return np.random.default_rng(29).normal(size=(16, 4, 60))


# --------------------------------------------------------------------- #
# The shared GEMM primitive
# --------------------------------------------------------------------- #
class TestIntGemmPrimitive:
    def test_raw_accumulator_matches_einsum(self, rng):
        lhs = rng.integers(-128, 128, size=(7, 5)).astype(np.int8)
        rhs = rng.integers(-128, 128, size=(5, 3)).astype(np.int8)
        expected = np.einsum(
            "mk,kn->mn", lhs.astype(np.int64), rhs.astype(np.int64)
        )
        np.testing.assert_array_equal(int_gemm(lhs, rhs), expected)
        assert int_gemm(lhs, rhs).dtype == np.int64

    def test_batched_lhs_and_rhs(self, rng):
        lhs = rng.integers(-128, 128, size=(4, 6, 5)).astype(np.int8)
        rhs = rng.integers(-128, 128, size=(4, 5, 2)).astype(np.int8)
        expected = np.einsum(
            "bmk,bkn->bmn", lhs.astype(np.int64), rhs.astype(np.int64)
        )
        np.testing.assert_array_equal(int_gemm(lhs, rhs), expected)

    def test_bias_and_requant_match_requantize(self, rng):
        lhs = rng.integers(-128, 128, size=(9, 4)).astype(np.int8)
        rhs = rng.integers(-128, 128, size=(4, 6)).astype(np.int8)
        bias = rng.integers(-(2**15), 2**15, size=6).astype(np.int64)
        factor = 0.0123
        multiplier, shift = quantize_multiplier(factor)
        fused = int_gemm(lhs, rhs, bias=bias, requant=(multiplier, shift, -128, 127))
        accumulator = lhs.astype(np.int64) @ rhs.astype(np.int64) + bias
        np.testing.assert_array_equal(fused, requantize(accumulator, factor))

    def test_apply_requant_matches_requantize_for_encoded_factor(self, rng):
        accumulators = rng.integers(-(2**20), 2**20, size=64)
        for factor in (1.0, 0.37, 3.0e-3, 5.5):
            multiplier, shift = quantize_multiplier(factor)
            np.testing.assert_array_equal(
                apply_requant(np.asarray(accumulators), multiplier, shift),
                requantize(accumulators, factor),
            )

    @pytest.mark.parametrize(
        "stride,padding,dilation", [(1, 0, 1), (2, 1, 1), (1, 2, 2), (3, 0, 1)]
    )
    def test_im2col_gemm_matches_einsum_conv(self, rng, stride, padding, dilation):
        q_x = rng.integers(-128, 128, size=(3, 4, 30)).astype(np.int32)
        q_w = rng.integers(-128, 128, size=(6, 4, 5)).astype(np.int32)
        kernel = q_w.shape[-1]
        patches = _im2col(q_x, kernel, stride, padding, dilation)
        flat_weight = q_w.reshape(6, 4 * kernel)
        via_gemm = int_gemm(patches, flat_weight.T).transpose(0, 2, 1)
        np.testing.assert_array_equal(
            via_gemm, _int_conv1d(q_x, q_w, stride, padding, dilation)
        )


# --------------------------------------------------------------------- #
# Whole-graph bitwise equality: GEMM vs einsum schedule
# --------------------------------------------------------------------- #
class TestExecutorParity:
    @pytest.mark.parametrize("use_lut", [True, False], ids=["lut", "elementwise"])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_gemm_matches_einsum_bitwise(self, quantized, windows, use_lut, batch):
        gemm = IntegerGraphExecutor(quantized, use_lut=use_lut, use_gemm=True)
        einsum = IntegerGraphExecutor(quantized, use_lut=use_lut, use_gemm=False)
        x = windows[:batch]
        np.testing.assert_array_equal(gemm.run_integer(x), einsum.run_integer(x))

    def test_batched_matches_single_sample_bitwise(self, quantized, windows):
        executor = IntegerGraphExecutor(quantized, use_gemm=True)
        batched = executor.run_integer(windows)
        singles = np.concatenate(
            [executor.run_integer(windows[i : i + 1]) for i in range(windows.shape[0])]
        )
        np.testing.assert_array_equal(batched, singles)

    def test_dequantised_logits_identical_too(self, quantized, windows):
        gemm = IntegerGraphExecutor(quantized, use_gemm=True)
        einsum = IntegerGraphExecutor(quantized, use_gemm=False)
        np.testing.assert_array_equal(gemm.run(windows[:8]), einsum.run(windows[:8]))

    def test_use_gemm_flag_default_and_opt_out(self, quantized):
        assert IntegerGraphExecutor(quantized).use_gemm is True
        assert IntegerGraphExecutor(quantized, use_gemm=False).use_gemm is False


# --------------------------------------------------------------------- #
# Lowering-time tile metadata
# --------------------------------------------------------------------- #
class TestGemmTileMetadata:
    def test_every_mac_node_carries_a_tile(self, quantized):
        mac_nodes = [
            node
            for node in quantized.graph.nodes
            if node.op in ("conv1d", "linear", "matmul")
        ]
        assert mac_nodes  # every registry model has a MAC hot path
        for node in mac_nodes:
            tile = quantized.nodes[node.name].gemm
            assert isinstance(tile, GemmTileInfo)
            assert tile.m > 0 and tile.k > 0 and tile.n > 0
            assert tile.macs == tile.m * tile.k * tile.n

    def test_tile_requantiser_equals_lowered_requantiser(self, quantized):
        """The precomputed per-tile (multiplier, shift) must be the *same
        encoding* the einsum path derives — that identity is what makes the
        two schedules bitwise interchangeable."""
        for node in quantized.graph.nodes:
            if node.op not in ("conv1d", "linear"):
                continue
            lowered = quantized.nodes[node.name]
            multiplier, shift = lowered.requantizers["output"]
            assert lowered.gemm.multiplier == multiplier
            assert lowered.gemm.shift == shift

    def test_non_mac_nodes_have_no_tile(self, quantized):
        for node in quantized.graph.nodes:
            if node.op not in ("conv1d", "linear", "matmul"):
                assert quantized.nodes[node.name].gemm is None


# --------------------------------------------------------------------- #
# Float fast path (inference-mode mirrors) stays bitwise-pinned
# --------------------------------------------------------------------- #
class TestFloatFastPathParity:
    @pytest.mark.parametrize("config", CONFIGS, ids=config_id)
    @pytest.mark.parametrize("batch", [1, 5])
    def test_inference_mode_matches_autograd_forward(self, config, batch):
        arch, patch = config
        kwargs = dict(GEOMETRY)
        if patch is not None:
            kwargs["patch_size"] = patch
        model = build_model(arch, **kwargs).eval()
        x = np.random.default_rng(31).normal(size=(batch, 4, 60))
        expected = model(Tensor(x)).data  # autograd Tensor path
        with inference_mode():
            fast = model(Tensor(x)).data  # ndarray mirror path
        np.testing.assert_array_equal(fast, expected)
