"""Tests of the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, no_grad
from repro.nn.tensor import unbroadcast


def numeric_gradient(function, tensor, index, eps=1e-6):
    """Central finite-difference derivative of ``function`` w.r.t. one element."""
    original = tensor.data[index]
    tensor.data[index] = original + eps
    up = float(function().data)
    tensor.data[index] = original - eps
    down = float(function().data)
    tensor.data[index] = original
    return (up - down) / (2 * eps)


class TestBasicOps:
    def test_addition_forward_and_backward(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        out = (a + b).sum()
        out.backward()
        np.testing.assert_allclose(out.data, 21.0)
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_multiplication_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_division_backward(self):
        a = Tensor([2.0, 8.0], requires_grad=True)
        b = Tensor([4.0, 2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.25, 0.5])
        np.testing.assert_allclose(b.grad, [-2.0 / 16.0, -8.0 / 4.0])

    def test_subtraction_and_negation(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0 and b.grad[0] == -1.0
        c = Tensor([2.0], requires_grad=True)
        (-c).backward()
        assert c.grad[0] == -1.0

    def test_power_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**3).backward()
        np.testing.assert_allclose(a.grad, [27.0])

    def test_power_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_scalar_operand_promotion(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (2.0 * a + 1.0 - 0.5) / 2.0
        np.testing.assert_allclose(out.data, [1.25, 2.25])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_rsub_and_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        np.testing.assert_allclose((10.0 - a).data, [8.0])
        np.testing.assert_allclose((10.0 / a).data, [5.0])


class TestBroadcasting:
    def test_broadcast_add_gradient_is_summed(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_broadcast_mul_keepdims_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [[3.0], [12.0]])

    def test_unbroadcast_matches_shape(self):
        gradient = np.ones((5, 3, 4))
        reduced = unbroadcast(gradient, (3, 1))
        assert reduced.shape == (3, 1)
        np.testing.assert_allclose(reduced, 20 * np.ones((3, 1)))

    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-10, 10)),
    )
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_roundtrip_property(self, base):
        """Broadcasting then unbroadcasting a gradient preserves totals."""
        target_shape = (2,) + base.shape
        broadcast = np.broadcast_to(base, target_shape)
        reduced = unbroadcast(np.ascontiguousarray(broadcast), base.shape)
        np.testing.assert_allclose(reduced, 2 * base)


class TestMatmul:
    def test_matmul_2d_gradcheck(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (a.matmul(b) ** 2).sum().backward()
        index = (1, 2)
        numeric = numeric_gradient(lambda: (Tensor(a.data).matmul(Tensor(b.data)) ** 2).sum(), a, index)
        assert abs(numeric - a.grad[index]) < 1e-5

    def test_matmul_batched_shapes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4, 5)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3, 5, 6)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 3, 4, 6)
        out.sum().backward()
        assert a.grad.shape == a.shape and b.grad.shape == b.shape

    def test_matmul_broadcast_batch_dim(self, rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 5, 6)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (3, 4, 6)
        out.sum().backward()
        assert a.grad.shape == (4, 5)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))

    def test_mean_gradient_scaling(self):
        a = Tensor(np.ones((2, 5)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 5), 0.1))

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1 / 8))

    def test_max_backward_routes_to_argmax(self):
        a = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_share_gradient(self):
        a = Tensor([[3.0, 3.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_min_via_max(self):
        a = Tensor([[4.0, -1.0, 2.0]], requires_grad=True)
        out = a.min(axis=1)
        np.testing.assert_allclose(out.data, [-1.0])

    def test_var_matches_numpy(self, rng):
        values = rng.standard_normal((4, 7))
        a = Tensor(values)
        np.testing.assert_allclose(a.var(axis=1).data, values.var(axis=1), atol=1e-12)


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"])
    def test_elementwise_gradcheck(self, name, rng):
        values = np.abs(rng.standard_normal(6)) + 0.5  # positive (log/sqrt safe)
        a = Tensor(values, requires_grad=True)
        out = getattr(a, name)().sum()
        out.backward()
        index = (2,)
        numeric = numeric_gradient(lambda: getattr(Tensor(a.data), name)().sum(), a, index)
        assert abs(numeric - a.grad[index]) < 1e-5

    def test_clip_gradient_zero_outside(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestShapeOps:
    def test_reshape_backward(self, rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)

    def test_transpose_roundtrip(self, rng):
        values = rng.standard_normal((2, 3, 4))
        a = Tensor(values, requires_grad=True)
        out = a.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_swapaxes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        assert a.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_backward_scatter(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_pad_backward_slices_interior(self):
        a = Tensor(np.ones((1, 2, 3)), requires_grad=True)
        out = a.pad(((0, 0), (0, 0), (2, 2)))
        assert out.shape == (1, 2, 7)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 2, 3)))

    def test_concatenate_backward_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, 2 * np.ones((2, 3)))

    def test_stack(self):
        a = Tensor(np.ones(3))
        b = Tensor(np.zeros(3))
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_where_selects_and_routes_gradient(self):
        condition = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = Tensor.where(condition, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_squeeze_expand_dims(self):
        a = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        assert a.squeeze(1).shape == (2, 3)
        assert a.expand_dims(0).shape == (1, 2, 1, 3)


class TestBackwardMechanics:
    def test_backward_requires_scalar_or_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * a  # a used twice
        out.backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 3
        assert not out.requires_grad

    def test_no_grad_as_decorator(self):
        a = Tensor([1.0], requires_grad=True)

        @no_grad()
        def run():
            return a * 2

        assert not run().requires_grad

    def test_no_grad_is_thread_local(self):
        # A serving thread under no_grad/inference_mode must not disable
        # gradient recording for a concurrently training thread.
        import threading

        entered = threading.Event()
        release = threading.Event()

        def serving_thread():
            with no_grad():
                entered.set()
                release.wait(timeout=10.0)

        worker = threading.Thread(target=serving_thread)
        worker.start()
        try:
            assert entered.wait(timeout=10.0)
            a = Tensor([2.0], requires_grad=True)
            out = a * a
            assert out.requires_grad
            out.backward()
            np.testing.assert_allclose(a.grad, [4.0])
        finally:
            release.set()
            worker.join(timeout=10.0)

    def test_detach_and_copy(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data
        c = a.copy()
        c.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_deep_graph_does_not_hit_recursion_limit(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(2000):
            out = out + 0.001
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None


class TestConstructors:
    def test_zeros_ones_randn(self, rng):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones((4,)).data.sum() == 4
        r = Tensor.randn(5, rng=rng)
        assert r.shape == (5,)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4
