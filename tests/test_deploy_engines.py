"""Tests for the float and integer graph executors and the int8 lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy import (
    FloatGraphExecutor,
    IntegerGraphExecutor,
    lower_to_int8,
    quantize_multiplier,
    requantize,
    trace_bioformer,
    trace_temponet,
)
from repro.deploy.engine import conv1d_reference, gelu_reference, softmax_reference
from repro.models import Bioformer, BioformerConfig, temponet
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def small_bioformer(**overrides):
    config = BioformerConfig(
        num_channels=4, window_samples=60, patch_size=10, depth=1, num_heads=2, seed=11, **overrides
    )
    return Bioformer(config).eval()


def small_temponet():
    return temponet(num_channels=4, window_samples=80, seed=11).eval()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(99)


# --------------------------------------------------------------------- #
# Reference kernels
# --------------------------------------------------------------------- #
class TestReferenceKernels:
    def test_conv1d_matches_framework(self, rng):
        x = rng.normal(size=(2, 3, 20))
        weight = rng.normal(size=(5, 3, 4))
        bias = rng.normal(size=5)
        expected = F.conv1d(Tensor(x), Tensor(weight), Tensor(bias), stride=2, padding=1, dilation=1)
        actual = conv1d_reference(x, weight, bias, stride=2, padding=1, dilation=1)
        np.testing.assert_allclose(actual, expected.data, atol=1e-10)

    def test_conv1d_dilation_matches_framework(self, rng):
        x = rng.normal(size=(1, 2, 30))
        weight = rng.normal(size=(4, 2, 3))
        expected = F.conv1d(Tensor(x), Tensor(weight), None, stride=1, padding=2, dilation=2)
        actual = conv1d_reference(x, weight, None, stride=1, padding=2, dilation=2)
        np.testing.assert_allclose(actual, expected.data, atol=1e-10)

    def test_conv1d_rejects_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="input channels"):
            conv1d_reference(rng.normal(size=(1, 3, 10)), rng.normal(size=(2, 4, 3)), None, 1, 0, 1)

    def test_gelu_matches_framework(self, rng):
        x = rng.normal(size=(5, 7))
        expected = F.gelu(Tensor(x)).data
        np.testing.assert_allclose(gelu_reference(x), expected, atol=1e-10)

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(3, 9)) * 10
        probabilities = softmax_reference(x)
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0, atol=1e-12)


# --------------------------------------------------------------------- #
# Float executor: trace fidelity
# --------------------------------------------------------------------- #
class TestFloatExecutorParity:
    def test_bioformer_parity(self, rng):
        model = small_bioformer()
        x = rng.normal(size=(5, 4, 60))
        expected = model(x).data
        actual = FloatGraphExecutor(trace_bioformer(model)).run(x)
        np.testing.assert_allclose(actual, expected, atol=1e-9)

    def test_bioformer_mean_pooling_parity(self, rng):
        model = small_bioformer(pooling="mean")
        x = rng.normal(size=(3, 4, 60))
        np.testing.assert_allclose(
            FloatGraphExecutor(trace_bioformer(model)).run(x), model(x).data, atol=1e-9
        )

    def test_bioformer_depth2_parity(self, rng):
        model = Bioformer(
            BioformerConfig(num_channels=4, window_samples=60, patch_size=10, depth=2, num_heads=2, seed=5)
        ).eval()
        x = rng.normal(size=(2, 4, 60))
        np.testing.assert_allclose(
            FloatGraphExecutor(trace_bioformer(model)).run(x), model(x).data, atol=1e-9
        )

    def test_temponet_parity(self, rng):
        model = small_temponet()
        x = rng.normal(size=(4, 4, 80))
        np.testing.assert_allclose(
            FloatGraphExecutor(trace_temponet(model)).run(x), model(x).data, atol=1e-9
        )

    def test_single_sample_without_batch_axis(self, rng):
        model = small_bioformer()
        x = rng.normal(size=(4, 60))
        output = FloatGraphExecutor(trace_bioformer(model)).run(x)
        assert output.shape == (1, 8)

    def test_wrong_input_shape_rejected(self, rng):
        executor = FloatGraphExecutor(trace_bioformer(small_bioformer()))
        with pytest.raises(ValueError, match="expects input shape"):
            executor.run(rng.normal(size=(2, 3, 60)))

    def test_recording_contains_every_tensor(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        recorded = FloatGraphExecutor(graph).run_recording(rng.normal(size=(2, 4, 60)))
        assert set(recorded) == set(graph.tensor_specs())

    def test_predict_returns_class_indices(self, rng):
        model = small_bioformer()
        predictions = FloatGraphExecutor(trace_bioformer(model)).predict(rng.normal(size=(6, 4, 60)))
        assert predictions.shape == (6,)
        assert predictions.min() >= 0 and predictions.max() < 8


# --------------------------------------------------------------------- #
# Requantisation primitives
# --------------------------------------------------------------------- #
class TestRequantization:
    def test_quantize_multiplier_reconstruction(self):
        for value in (1.0, 0.5, 0.013, 7.3e-4, 3.9, 123.4):
            multiplier, shift = quantize_multiplier(value)
            reconstructed = multiplier * 2.0**-shift
            assert reconstructed == pytest.approx(value, rel=1e-6)

    def test_quantize_multiplier_rejects_non_positive(self):
        with pytest.raises(ValueError):
            quantize_multiplier(0.0)
        with pytest.raises(ValueError):
            quantize_multiplier(-1.0)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    @settings(max_examples=60, deadline=None)
    def test_quantize_multiplier_accuracy_property(self, value):
        multiplier, shift = quantize_multiplier(value)
        assert abs(multiplier * 2.0**-shift - value) <= 1e-6 * value

    @given(
        st.lists(st.integers(min_value=-(2**20), max_value=2**20), min_size=1, max_size=32),
        st.floats(min_value=1e-4, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_requantize_matches_float_rounding(self, values, factor):
        accumulators = np.asarray(values, dtype=np.int64)
        result = requantize(accumulators, factor)
        expected = np.clip(np.round(accumulators * factor), -128, 127)
        # Fixed-point rounding may differ by at most one LSB from float rounding.
        assert np.all(np.abs(result - expected) <= 1)

    def test_requantize_clips_to_int8(self):
        assert requantize(np.array([10**9]), 1.0).max() == 127
        assert requantize(np.array([-(10**9)]), 1.0).min() == -128

    def test_requantize_negative_factor_flips_sign(self):
        values = np.array([100, -50])
        positive = requantize(values, 0.5)
        negative = requantize(values, -0.5)
        np.testing.assert_array_equal(negative, requantize(-values, 0.5))
        assert positive[0] == -negative[0]

    def test_requantize_left_shift_saturates_instead_of_overflowing(self):
        """Regression: factors > 1 encode as a *left* shift (negative
        ``shift`` from ``quantize_multiplier``), and the shift used to run
        on the raw int64 product — ``2**30 * 2**33`` wrapped negative and
        came back as -128 instead of saturating at +127."""
        accumulators = np.array([2**30, -(2**30), 0], dtype=np.int64)
        multiplier, shift = quantize_multiplier(2.0**33)
        assert shift < 0  # the boundary this test pins: a left shift
        np.testing.assert_array_equal(
            requantize(accumulators, 2.0**33), np.array([127, -128, 0])
        )

    def test_requantize_huge_left_shift_saturates(self):
        """A shift large enough that even the clipped int8 value would
        overflow int64 when shifted: nonzero values saturate directly."""
        accumulators = np.array([5, -5, 0], dtype=np.int64)
        np.testing.assert_array_equal(
            requantize(accumulators, 2.0**100), np.array([127, -128, 0])
        )

    def test_requantize_boundary_multipliers_stay_exact(self):
        """Small magnitudes under a left shift still requantise exactly
        (the clip-before-shift reordering must not change in-range math)."""
        accumulators = np.arange(-8, 9, dtype=np.int64)
        for factor in (2.0, 4.0, 8.0):
            expected = np.clip(accumulators * int(factor), -128, 127)
            np.testing.assert_array_equal(requantize(accumulators, factor), expected)


# --------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------- #
class TestLowering:
    def test_every_tensor_gets_activation_scale(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        quantized = lower_to_int8(graph, rng.normal(size=(8, 4, 60)))
        assert set(quantized.activations) == set(graph.tensor_specs())
        assert all(act.scale > 0 for act in quantized.activations.values())

    def test_weight_footprint_close_to_parameter_count(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        quantized = lower_to_int8(graph, rng.normal(size=(4, 4, 60)))
        # int8 weights ~1 byte/param + int32 biases; allow the bias overhead.
        assert quantized.total_weight_bytes >= model.num_parameters()
        assert quantized.total_weight_bytes <= 1.6 * model.num_parameters()

    def test_paper_scale_bioformer_memory_footprint(self, rng):
        """Bio1 with filter 10 must land near the paper's 94.2 kB figure."""
        from repro.models import bioformer_bio1

        model = bioformer_bio1(patch_size=10).eval()
        graph = trace_bioformer(model)
        quantized = lower_to_int8(graph, rng.normal(size=(2, 14, 300)))
        assert 85.0 <= quantized.weight_kilobytes <= 110.0

    def test_softmax_scale_pinned(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        quantized = lower_to_int8(graph, rng.normal(size=(4, 4, 60)))
        softmax_nodes = [node for node in graph if node.op == "softmax"]
        for node in softmax_nodes:
            assert quantized.activations[node.output.name].scale == pytest.approx(1.0 / 127.0)

    def test_conv_and_linear_nodes_have_requantizers(self, rng):
        model = small_temponet()
        graph = trace_temponet(model)
        quantized = lower_to_int8(graph, rng.normal(size=(4, 4, 80)))
        for node in graph:
            if node.op in ("conv1d", "linear"):
                lowered = quantized.nodes[node.name]
                assert "weight" in lowered.constants
                assert lowered.constants["weight"].dtype == "int8"
                assert "output" in lowered.requantizers

    def test_activation_bits_respected(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        quantized = lower_to_int8(graph, rng.normal(size=(4, 4, 60)), activation_bits=6)
        assert quantized.input_quantization.qmax == 31
        assert quantized.input_quantization.qmin == -32


# --------------------------------------------------------------------- #
# Vectorised integer kernels vs. the original per-tap accumulation loops
# --------------------------------------------------------------------- #
def _int_conv1d_taploop(q_x, q_weight, stride, padding, dilation):
    """The per-tap reference the vectorised ``_int_conv1d`` replaced."""
    q_x = q_x.astype(np.int64)
    q_weight = q_weight.astype(np.int64)
    batch, _, length = q_x.shape
    out_channels, _, kernel = q_weight.shape
    if padding > 0:
        q_x = np.pad(q_x, ((0, 0), (0, 0), (padding, padding)))
        length = q_x.shape[-1]
    effective = dilation * (kernel - 1) + 1
    out_length = (length - effective) // stride + 1
    accumulator = np.zeros((batch, out_channels, out_length), dtype=np.int64)
    for tap in range(kernel):
        start = tap * dilation
        stop = start + stride * out_length
        window = q_x[:, :, start:stop:stride]
        accumulator += np.einsum("bcl,oc->bol", window, q_weight[:, :, tap])
    return accumulator


def _int_avgpool_taploop(q_x, kernel, stride):
    """Per-tap accumulation of the integer average-pool (pre-requantisation)."""
    batch, channels, length = q_x.shape
    out_length = (length - kernel) // stride + 1
    accumulator = np.zeros((batch, channels, out_length), dtype=np.int64)
    for tap in range(kernel):
        accumulator += q_x[:, :, tap : tap + stride * out_length : stride]
    return accumulator


class TestVectorizedIntegerKernels:
    @given(
        batch=st.integers(1, 3),
        in_channels=st.integers(1, 5),
        out_channels=st.integers(1, 5),
        length=st.integers(8, 40),
        kernel=st.integers(1, 7),
        stride=st.integers(1, 4),
        padding=st.integers(0, 3),
        dilation=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_int_conv1d_equals_taploop(
        self, batch, in_channels, out_channels, length, kernel, stride, padding, dilation
    ):
        from repro.deploy.int_engine import _int_conv1d

        effective = dilation * (kernel - 1) + 1
        if length + 2 * padding < effective:
            return  # empty output; the executor never builds such nodes
        generator = np.random.default_rng(batch * 1000 + length * 10 + kernel)
        q_x = generator.integers(-128, 128, size=(batch, in_channels, length))
        q_weight = generator.integers(-128, 128, size=(out_channels, in_channels, kernel))
        np.testing.assert_array_equal(
            _int_conv1d(q_x, q_weight, stride, padding, dilation),
            _int_conv1d_taploop(q_x, q_weight, stride, padding, dilation),
        )

    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 6),
        length=st.integers(4, 48),
        kernel=st.integers(1, 6),
        stride=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_int_avgpool_equals_taploop(self, batch, channels, length, kernel, stride):
        if length < kernel:
            return
        generator = np.random.default_rng(channels * 100 + length)
        q_x = generator.integers(-128, 128, size=(batch, channels, length))
        windows = np.lib.stride_tricks.sliding_window_view(q_x, kernel, axis=-1)
        vectorized = windows[:, :, ::stride, :].astype(np.int64).sum(axis=-1)
        np.testing.assert_array_equal(vectorized, _int_avgpool_taploop(q_x, kernel, stride))


# --------------------------------------------------------------------- #
# Integer executor
# --------------------------------------------------------------------- #
class TestIntegerExecutor:
    def test_bioformer_int8_agreement_with_float(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        calibration = rng.normal(size=(16, 4, 60))
        quantized = lower_to_int8(graph, calibration)
        executor = IntegerGraphExecutor(quantized)
        agreement = executor.agreement_with_float(rng.normal(size=(24, 4, 60)))
        assert agreement >= 0.75

    def test_temponet_int8_agreement_with_float(self, rng):
        model = small_temponet()
        graph = trace_temponet(model)
        calibration = rng.normal(size=(16, 4, 80))
        quantized = lower_to_int8(graph, calibration)
        executor = IntegerGraphExecutor(quantized)
        agreement = executor.agreement_with_float(rng.normal(size=(24, 4, 80)))
        assert agreement >= 0.85

    def test_integer_logits_correlate_with_float(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        inputs = rng.normal(size=(12, 4, 60))
        quantized = lower_to_int8(graph, inputs)
        float_logits = FloatGraphExecutor(graph).run(inputs)
        integer_logits = IntegerGraphExecutor(quantized).run(inputs)
        correlation = np.corrcoef(float_logits.ravel(), integer_logits.ravel())[0, 1]
        assert correlation >= 0.85

    def test_integer_outputs_are_int8_grid(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        quantized = lower_to_int8(graph, rng.normal(size=(4, 4, 60)))
        integer_logits = IntegerGraphExecutor(quantized).run_integer(rng.normal(size=(3, 4, 60)))
        assert integer_logits.dtype in (np.int32, np.int64)
        assert integer_logits.min() >= -128 and integer_logits.max() <= 127

    def test_predictions_shape(self, rng):
        model = small_temponet()
        quantized = lower_to_int8(trace_temponet(model), rng.normal(size=(4, 4, 80)))
        predictions = IntegerGraphExecutor(quantized).predict(rng.normal(size=(5, 4, 80)))
        assert predictions.shape == (5,)

    def test_lower_activation_bits_degrade_gracefully(self, rng):
        model = small_bioformer()
        graph = trace_bioformer(model)
        calibration = rng.normal(size=(16, 4, 60))
        evaluation = rng.normal(size=(24, 4, 60))
        agreement_8 = IntegerGraphExecutor(lower_to_int8(graph, calibration)).agreement_with_float(
            evaluation
        )
        agreement_4 = IntegerGraphExecutor(
            lower_to_int8(graph, calibration, weight_bits=4, activation_bits=4)
        ).agreement_with_float(evaluation)
        assert agreement_8 >= agreement_4
