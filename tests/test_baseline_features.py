"""Tests for the hand-crafted sEMG feature extractors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines import DEFAULT_FEATURES, FeatureSet
from repro.baselines.features import (
    amplitude_histogram,
    autoregressive_coefficients,
    hjorth_complexity,
    hjorth_mobility,
    integrated_emg,
    log_detector,
    mean_absolute_value,
    root_mean_square,
    slope_sign_changes,
    variance,
    waveform_length,
    willison_amplitude,
    zero_crossings,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="module")
def windows(rng):
    return rng.normal(size=(12, 4, 100))


finite_windows = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(1, 4), st.integers(1, 3), st.integers(8, 40)
    ),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)


# --------------------------------------------------------------------- #
# Individual extractors
# --------------------------------------------------------------------- #
class TestAmplitudeFeatures:
    def test_shapes(self, windows):
        for extractor in (mean_absolute_value, root_mean_square, integrated_emg, variance,
                          waveform_length, willison_amplitude, log_detector):
            assert extractor(windows).shape == (12, 4)

    def test_mav_of_constant_signal(self):
        constant = np.full((1, 2, 50), 3.0)
        np.testing.assert_allclose(mean_absolute_value(constant), 3.0)
        np.testing.assert_allclose(root_mean_square(constant), 3.0)
        np.testing.assert_allclose(waveform_length(constant), 0.0)
        np.testing.assert_allclose(variance(constant), 0.0)

    def test_rms_at_least_mav(self, windows):
        assert np.all(root_mean_square(windows) >= mean_absolute_value(windows) - 1e-12)

    def test_iemg_is_samples_times_mav(self, windows):
        np.testing.assert_allclose(
            integrated_emg(windows), mean_absolute_value(windows) * windows.shape[-1]
        )

    def test_scaling_a_signal_scales_amplitude_features(self, windows):
        scaled = 2.5 * windows
        np.testing.assert_allclose(mean_absolute_value(scaled), 2.5 * mean_absolute_value(windows))
        np.testing.assert_allclose(waveform_length(scaled), 2.5 * waveform_length(windows))
        np.testing.assert_allclose(variance(scaled), 2.5**2 * variance(windows))

    def test_willison_threshold_monotonic(self, windows):
        low = willison_amplitude(windows, threshold=0.01)
        high = willison_amplitude(windows, threshold=1.0)
        assert np.all(low >= high)

    @given(finite_windows)
    @settings(max_examples=30, deadline=None)
    def test_amplitude_features_finite_property(self, batch):
        for extractor in (mean_absolute_value, root_mean_square, waveform_length, log_detector):
            assert np.all(np.isfinite(extractor(batch)))


class TestFrequencyFeatures:
    def test_zero_crossings_of_alternating_signal(self):
        signal = np.tile(np.array([1.0, -1.0]), 25)[None, None, :]
        assert zero_crossings(signal)[0, 0] == 49

    def test_zero_crossings_of_positive_signal(self):
        signal = np.abs(np.random.default_rng(0).normal(size=(1, 1, 60))) + 0.1
        assert zero_crossings(signal)[0, 0] == 0

    def test_slope_sign_changes_of_monotonic_signal(self):
        ramp = np.linspace(0, 1, 80)[None, None, :]
        assert slope_sign_changes(ramp)[0, 0] == 0

    def test_slope_sign_changes_of_zigzag(self):
        zigzag = np.tile(np.array([0.0, 1.0]), 30)[None, None, :]
        assert slope_sign_changes(zigzag)[0, 0] >= 55

    def test_hjorth_mobility_of_sine_increases_with_frequency(self):
        time = np.linspace(0, 1, 500)
        slow = np.sin(2 * np.pi * 5 * time)[None, None, :]
        fast = np.sin(2 * np.pi * 40 * time)[None, None, :]
        assert hjorth_mobility(fast)[0, 0] > hjorth_mobility(slow)[0, 0]

    def test_hjorth_complexity_positive(self, windows):
        assert np.all(hjorth_complexity(windows) > 0)


class TestModelBasedFeatures:
    def test_ar_shape(self, windows):
        assert autoregressive_coefficients(windows, order=4).shape == (12, 16)

    def test_ar_recovers_known_process(self, rng):
        # x[t] = 0.7 x[t-1] + noise: the first AR coefficient should be ~0.7.
        num_samples = 4000
        noise = rng.normal(size=num_samples)
        signal = np.zeros(num_samples)
        for index in range(1, num_samples):
            signal[index] = 0.7 * signal[index - 1] + noise[index]
        coefficients = autoregressive_coefficients(signal[None, None, :], order=2)[0]
        assert coefficients[0] == pytest.approx(0.7, abs=0.08)

    def test_ar_rejects_bad_order(self, windows):
        with pytest.raises(ValueError):
            autoregressive_coefficients(windows, order=0)
        with pytest.raises(ValueError):
            autoregressive_coefficients(np.zeros((1, 1, 3)), order=5)

    def test_histogram_rows_sum_to_one(self, windows):
        histogram = amplitude_histogram(windows, bins=8)
        assert histogram.shape == (12, 32)
        per_channel = histogram.reshape(12, 4, 8).sum(axis=-1)
        np.testing.assert_allclose(per_channel, 1.0, atol=1e-9)

    def test_histogram_rejects_single_bin(self, windows):
        with pytest.raises(ValueError):
            amplitude_histogram(windows, bins=1)


# --------------------------------------------------------------------- #
# FeatureSet front end
# --------------------------------------------------------------------- #
class TestFeatureSet:
    def test_default_dimension(self, windows):
        features = FeatureSet()
        matrix = features.extract(windows)
        assert matrix.shape == (12, features.dimension(4))
        assert features.dimension(4) == 4 * len(DEFAULT_FEATURES)

    def test_multiwidth_features_accounted(self, windows):
        features = FeatureSet(("mav", "ar4", "hist8"))
        assert features.features_per_channel() == 1 + 4 + 8
        assert features.extract(windows).shape == (12, 4 * 13)

    def test_feature_names_match_columns(self, windows):
        features = FeatureSet(("mav", "ar4"))
        names = features.feature_names(4)
        assert len(names) == features.extract(windows).shape[1]
        assert "ch0.mav" in names and "ch3.ar4[3]" in names

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown features"):
            FeatureSet(("mav", "nonexistent"))

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            FeatureSet(())

    def test_available_lists_registry(self):
        available = FeatureSet.available()
        assert "rms" in available and "ar4" in available

    def test_single_window_without_batch_axis(self, rng):
        features = FeatureSet(("mav", "rms"))
        matrix = features.extract(rng.normal(size=(4, 50)))
        assert matrix.shape == (1, 8)

    def test_rejects_flat_input(self, rng):
        with pytest.raises(ValueError):
            FeatureSet(("mav",)).extract(rng.normal(size=50))

    def test_features_separate_distinct_amplitude_classes(self, rng):
        quiet = rng.normal(scale=0.1, size=(20, 3, 80))
        loud = rng.normal(scale=2.0, size=(20, 3, 80))
        features = FeatureSet(("rms", "wl"))
        quiet_matrix = features.extract(quiet)
        loud_matrix = features.extract(loud)
        assert loud_matrix.mean() > 5 * quiet_matrix.mean()
