"""The deploy compiler: pass pipeline, fusion passes, and their bitwise pins.

The compiler contract has two halves:

1. **Mechanics** — every pass is pure, the manager re-validates the graph
   after each pass, the manifest records what ran, and the hardened
   ``ComputeGraph.validate`` rejects duplicate node names and dangling
   inputs at the pass boundary.
2. **Numerics** — every pass, and every ordering of the optimization
   passes, keeps executor logits *bitwise equal* (``assert_array_equal``,
   never a tolerance) across all registry configs × {LUT, elementwise}
   lowering × {GEMM, einsum} execution, while the fusion passes strictly
   shrink the node schedule.
"""

import itertools
from dataclasses import replace

import numpy as np
import pytest

from repro.deploy import (
    CodeGenerator,
    FloatGraphExecutor,
    IntegerGraphExecutor,
    deploy_graph,
    lower_to_int8,
    trace_model,
)
from repro.deploy.graph import ComputeGraph, GraphNode, TensorSpec
from repro.deploy.lowering import QuantizedNode
from repro.deploy.memory import live_ranges, plan_activation_memory
from repro.deploy.passes import (
    DeadNodeEliminationPass,
    FoldRequantPass,
    FuseConvPoolPass,
    GraphPass,
    LoweringConfig,
    LoweringState,
    PassManager,
    PassPipelineError,
    build_pass_pipeline,
    compile_graph,
)
from repro.models import build_model
from repro.serve import BackendCache, InferenceServer, build_int8_backend

GEOMETRY = dict(num_channels=4, window_samples=60, seed=11)

#: Every registry-reachable (architecture, patch_size) pair.
CONFIGS = [
    ("bio1", 10),
    ("bio1", 20),
    ("bio2", 10),
    ("bio2", 20),
    ("temponet", None),
]

BASE_PASSES = ["calibrate-activations", "quantize-weights", "plan-gemm-tiles"]
OPTIMIZATION_PASSES = ["fold-requant", "fuse-conv-pool", "dead-node-elimination"]


def config_id(config):
    arch, patch = config
    return arch if patch is None else f"{arch}-p{patch}"


def make_model(arch, patch=10):
    kwargs = dict(GEOMETRY)
    if arch != "temponet":
        kwargs["patch_size"] = patch
    return build_model(arch, **kwargs).eval()


@pytest.fixture(scope="module")
def calibration():
    return np.random.default_rng(5).normal(size=(16, 4, 60))


@pytest.fixture(scope="module")
def windows():
    return np.random.default_rng(29).normal(size=(5, 4, 60))


@pytest.fixture(scope="module", params=CONFIGS, ids=config_id)
def traced(request):
    arch, patch = request.param
    return trace_model(make_model(arch, patch))


@pytest.fixture(scope="module", params=[True, False], ids=["lut", "elementwise"])
def lowered_pair(request, traced, calibration):
    """(default, optimized) lowering of one config under one nonlinearity set."""
    use_lut = request.param
    default = lower_to_int8(traced, calibration, use_lut=use_lut)
    optimized = lower_to_int8(traced, calibration, use_lut=use_lut, optimize=True)
    return default, optimized


# --------------------------------------------------------------------- #
# Small hand-built graphs for mechanics tests
# --------------------------------------------------------------------- #
def relu_node(name, source, out_name, shape=(4, 8)):
    return GraphNode(
        name=name,
        op="relu",
        inputs=[source],
        output=TensorSpec(name=out_name, shape=shape),
    )


def tiny_graph(nodes):
    return ComputeGraph("tiny", TensorSpec(name="input", shape=(4, 8)), nodes)


def tiny_state(graph):
    return LoweringState(
        graph=graph,
        config=LoweringConfig(),
        calibration=np.zeros((1, 4, 8)),
        source_graph=graph,
        nodes={node.name: QuantizedNode(node=node) for node in graph.nodes},
    )


# --------------------------------------------------------------------- #
# LoweringConfig and the deprecated kwarg aliases
# --------------------------------------------------------------------- #
class TestLoweringConfig:
    def test_defaults_match_legacy_signature(self):
        config = LoweringConfig()
        assert config.weight_bits == 8
        assert config.activation_bits == 8
        assert config.calibration_percentile == 99.9
        assert config.use_lut is True
        assert not config.optimizes

    def test_optimized_enables_every_pass(self):
        config = LoweringConfig.optimized()
        assert config.fold_requant and config.fuse_pool and config.eliminate_dead_nodes
        assert config.optimizes
        partial = LoweringConfig.optimized(fuse_pool=False)
        assert partial.fold_requant and not partial.fuse_pool

    def test_resolve_maps_legacy_kwargs(self):
        config = LoweringConfig.resolve(activation_bits=6, use_lut=False)
        assert config.activation_bits == 6 and config.use_lut is False
        assert config.weight_bits == 8  # untouched default

    def test_resolve_none_keeps_config_value(self):
        base = LoweringConfig(use_lut=False)
        assert LoweringConfig.resolve(config=base, use_lut=None).use_lut is False
        assert LoweringConfig.resolve(config=base, use_lut=True).use_lut is True

    def test_resolve_optimize_shorthand(self):
        config = LoweringConfig.resolve(optimize=True)
        assert config == LoweringConfig.optimized()

    def test_resolve_rejects_unknown_option(self):
        with pytest.raises(TypeError, match="unknown lowering option"):
            LoweringConfig.resolve(use_lutt=True)

    def test_lower_to_int8_accepts_config_object(self, calibration):
        graph = trace_model(make_model("temponet"))
        quantized = lower_to_int8(graph, calibration, config=LoweringConfig())
        assert quantized.config == LoweringConfig()


# --------------------------------------------------------------------- #
# ComputeGraph.validate hardening
# --------------------------------------------------------------------- #
class TestValidateHardening:
    def test_rejects_duplicate_node_names(self):
        nodes = [
            relu_node("a", "input", "t1"),
            relu_node("a", "t1", "t2"),
        ]
        with pytest.raises(ValueError, match="node name 'a' is used twice"):
            tiny_graph(nodes)

    def test_rejects_dangling_tensor_input(self):
        with pytest.raises(ValueError, match="undefined tensor 'ghost'"):
            tiny_graph([relu_node("a", "ghost", "t1")])

    def test_rejects_duplicate_output_tensor(self):
        nodes = [
            relu_node("a", "input", "t1"),
            relu_node("b", "input", "t1"),
        ]
        with pytest.raises(ValueError, match="defined twice"):
            tiny_graph(nodes)

    def test_accepts_valid_chain(self):
        graph = tiny_graph([relu_node("a", "input", "t1"), relu_node("b", "t1", "t2")])
        graph.validate()  # no raise


# --------------------------------------------------------------------- #
# PassManager mechanics
# --------------------------------------------------------------------- #
class _RenameToDuplicate(GraphPass):
    name = "rename-to-duplicate"

    def run(self, state):
        first = state.graph.nodes[0]
        clone = GraphNode(
            name=first.name,
            op="relu",
            inputs=[first.output.name],
            output=TensorSpec(name="dup_out", shape=first.output.shape),
        )
        nodes = list(state.graph.nodes) + [clone]
        graph = ComputeGraph.__new__(ComputeGraph)
        graph.name = state.graph.name
        graph.graph_input = state.graph.graph_input
        graph.nodes = nodes
        return replace(state, graph=graph)


class _MutateInPlace(GraphPass):
    name = "mutate-in-place"

    def run(self, state):
        state.graph.nodes.append(
            relu_node("sneaky", state.graph.output.name, "sneaky_out")
        )
        return state


class _ReturnGarbage(GraphPass):
    name = "return-garbage"

    def run(self, state):
        return state.graph


class _Exploding(GraphPass):
    name = "exploding"

    def run(self, state):
        raise KeyError("boom")


class TestPassManager:
    def test_validates_after_every_pass(self):
        state = tiny_state(tiny_graph([relu_node("a", "input", "t1")]))
        manager = PassManager([_RenameToDuplicate()])
        with pytest.raises(PassPipelineError, match="rename-to-duplicate.*invalid graph"):
            manager.run(state)

    def test_detects_in_place_mutation(self):
        state = tiny_state(tiny_graph([relu_node("a", "input", "t1")]))
        with pytest.raises(PassPipelineError, match="mutated its input graph"):
            PassManager([_MutateInPlace()]).run(state)

    def test_rejects_non_state_return(self):
        state = tiny_state(tiny_graph([relu_node("a", "input", "t1")]))
        with pytest.raises(PassPipelineError, match="return-garbage"):
            PassManager([_ReturnGarbage()]).run(state)

    def test_wraps_pass_failure_with_pass_name(self):
        state = tiny_state(tiny_graph([relu_node("a", "input", "t1")]))
        with pytest.raises(PassPipelineError, match="exploding.*failed"):
            PassManager([_Exploding()]).run(state)

    def test_manifest_records_every_pass(self, calibration):
        graph = trace_model(make_model("temponet"))
        config = LoweringConfig.optimized()
        manager = PassManager(build_pass_pipeline(config))
        state = LoweringState(
            graph=graph, config=config, calibration=calibration, source_graph=graph
        )
        manager.run(state)
        assert [record.name for record in manager.manifest] == (
            BASE_PASSES + ["lut-substitution"] + OPTIMIZATION_PASSES
        )
        for record in manager.manifest:
            assert record.wall_ms >= 0.0
            assert record.nodes_after <= record.nodes_before


# --------------------------------------------------------------------- #
# Golden pass manifests
# --------------------------------------------------------------------- #
class TestGoldenManifest:
    def test_default_manifest(self, calibration):
        graph = trace_model(make_model("bio1"))
        quantized = lower_to_int8(graph, calibration)
        assert [r.name for r in quantized.manifest] == BASE_PASSES + ["lut-substitution"]

    def test_elementwise_manifest_skips_lut_pass(self, calibration):
        graph = trace_model(make_model("bio1"))
        quantized = lower_to_int8(graph, calibration, use_lut=False)
        assert [r.name for r in quantized.manifest] == BASE_PASSES

    def test_optimized_manifest_appends_fusion_passes(self, calibration):
        graph = trace_model(make_model("bio1"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        assert [r.name for r in quantized.manifest] == (
            BASE_PASSES + ["lut-substitution"] + OPTIMIZATION_PASSES
        )

    def test_node_counts_in_manifest_are_consistent(self, lowered_pair):
        _, optimized = lowered_pair
        records = optimized.manifest
        for earlier, later in zip(records, records[1:]):
            assert earlier.nodes_after == later.nodes_before
        assert records[-1].nodes_after == len(optimized.graph)

    def test_report_lists_executed_manifest(self, calibration):
        report = deploy_graph(
            make_model("temponet"), calibration, optimize=True, generate_code=False
        )
        text = report.render()
        assert "compiler passes" in text
        for name in OPTIMIZATION_PASSES:
            assert name in text
        assert "fused from" in text


# --------------------------------------------------------------------- #
# Bitwise invariance of the optimization passes
# --------------------------------------------------------------------- #
@pytest.mark.slow  # full op-set x model matrix; tier-1 keeps the targeted pass tests
class TestPassInvariance:
    @pytest.mark.parametrize("use_gemm", [None, False], ids=["gemm", "einsum"])
    def test_optimized_logits_bitwise_equal(self, lowered_pair, windows, use_gemm):
        default, optimized = lowered_pair
        for use_lut in (None, False):
            base = IntegerGraphExecutor(default, use_lut=use_lut, use_gemm=use_gemm)
            fused = IntegerGraphExecutor(optimized, use_lut=use_lut, use_gemm=use_gemm)
            np.testing.assert_array_equal(
                base.run_integer(windows), fused.run_integer(windows)
            )
            np.testing.assert_array_equal(base.run(windows), fused.run(windows))

    def test_batched_equals_single(self, lowered_pair, windows):
        _, optimized = lowered_pair
        executor = IntegerGraphExecutor(optimized)
        batched = executor.run_integer(windows)
        singles = np.concatenate(
            [executor.run_integer(windows[i : i + 1]) for i in range(len(windows))]
        )
        np.testing.assert_array_equal(batched, singles)

    def test_float_executor_replays_fused_graph_identically(self, lowered_pair, windows):
        _, optimized = lowered_pair
        assert optimized.source_graph is not None
        reference = FloatGraphExecutor(optimized.source_graph).run(windows)
        fused = FloatGraphExecutor(optimized.graph).run(windows)
        np.testing.assert_array_equal(reference, fused)

    def test_agreement_with_float_runs_on_fused_graph(self, lowered_pair, windows):
        _, optimized = lowered_pair
        agreement = IntegerGraphExecutor(optimized).agreement_with_float(windows)
        assert 0.0 <= agreement <= 1.0


class TestPassOrdering:
    @pytest.mark.parametrize("arch", ["bio1", "temponet"])
    def test_every_optimization_order_is_bitwise_equal(self, arch, calibration, windows):
        graph = trace_model(make_model(arch))
        default = lower_to_int8(graph, calibration)
        expected = IntegerGraphExecutor(default).run_integer(windows)
        pass_types = [FoldRequantPass, FuseConvPoolPass, DeadNodeEliminationPass]
        for ordering in itertools.permutations(pass_types):
            quantized = compile_graph(
                graph,
                calibration,
                LoweringConfig(),
                extra_passes=[cls() for cls in ordering],
            )
            produced = IntegerGraphExecutor(quantized).run_integer(windows)
            np.testing.assert_array_equal(expected, produced)
            assert len(quantized.graph) < len(graph)


# --------------------------------------------------------------------- #
# What fusion actually does to the graph
# --------------------------------------------------------------------- #
class TestFusion:
    def test_fused_graphs_have_strictly_fewer_nodes(self, lowered_pair):
        default, optimized = lowered_pair
        assert len(optimized.graph) < len(default.graph)

    def test_accounting_is_preserved(self, lowered_pair):
        default, optimized = lowered_pair
        assert optimized.graph.total_macs == default.graph.total_macs
        assert (
            optimized.graph.total_weight_elements
            == default.graph.total_weight_elements
        )
        assert optimized.total_weight_bytes == default.total_weight_bytes
        assert optimized.total_lut_bytes == default.total_lut_bytes

    def test_fusion_shrinks_the_activation_working_set(self, lowered_pair):
        # The offset allocator is a greedy heuristic, so the *packed* peak
        # can wiggle either way; the allocator-independent claim is that
        # fusion removes intermediate buffers and never increases the
        # number of bytes simultaneously live at any schedule step.
        default, optimized = lowered_pair

        def liveness_peak(graph):
            ranges = live_ranges(graph).values()
            steps = range(-1, len(graph))
            return max(
                sum(r.size_bytes for r in ranges if r.start <= step <= r.end)
                for step in steps
            )

        assert len(plan_activation_memory(optimized.graph).assignments) < len(
            plan_activation_memory(default.graph).assignments
        )
        assert liveness_peak(optimized.graph) <= liveness_peak(default.graph)

    def test_temponet_collapses_to_fused_convs(self, calibration):
        graph = trace_model(make_model("temponet"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        remaining_ops = {node.op for node in quantized.graph.nodes}
        # Every channel_affine / relu / avgpool1d is absorbed into its conv
        # (or the classifier linear); only the fused MACs and the flatten
        # survive in the schedule.
        assert remaining_ops <= {"conv1d", "linear", "flatten"}
        fused = [node for node in quantized.graph.nodes if node.is_fused]
        assert fused, "expected fused conv nodes"
        pooled = [
            node
            for node in fused
            if any(sub.op == "avgpool1d" for sub in node.fusion_chain)
        ]
        assert len(pooled) == 3  # one strided-conv+pool fusion per block

    def test_bioformer_folds_ffn_gelu(self, calibration):
        graph = trace_model(make_model("bio1"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        assert all(node.op != "gelu" for node in quantized.graph.nodes)
        expand = quantized.graph.node("block0.ffn.expand")
        assert [sub.op for sub in expand.fusion_chain] == ["linear", "gelu"]

    def test_payloads_of_absorbed_nodes_survive(self, calibration):
        graph = trace_model(make_model("temponet"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        for node in quantized.graph.nodes:
            for sub in node.fusion_chain:
                assert sub.name in quantized.nodes
            if node.is_fused:
                absorbed = quantized.nodes[node.name].fused
                assert absorbed == tuple(sub.name for sub in node.fusion_chain[1:])

    def test_default_pipeline_does_not_restructure(self, calibration, traced):
        quantized = lower_to_int8(traced, calibration)
        assert quantized.graph is traced
        assert quantized.source_graph is traced
        assert all(not node.is_fused for node in quantized.graph.nodes)


class TestDeadNodeElimination:
    def test_drops_unconsumed_nodes_and_payloads(self):
        nodes = [
            relu_node("live", "input", "t1"),
            relu_node("dead", "input", "t_dead"),
            relu_node("sink", "t1", "t2"),
        ]
        state = tiny_state(tiny_graph(nodes))
        result = DeadNodeEliminationPass().run(state)
        assert [node.name for node in result.graph.nodes] == ["live", "sink"]
        assert set(result.nodes) == {"live", "sink"}

    def test_noop_on_fully_live_graph(self):
        state = tiny_state(
            tiny_graph([relu_node("a", "input", "t1"), relu_node("b", "t1", "t2")])
        )
        result = DeadNodeEliminationPass().run(state)
        assert result is state  # pure no-op returns the same state


# --------------------------------------------------------------------- #
# Code generation for fused graphs
# --------------------------------------------------------------------- #
class TestFusedCodegen:
    def test_temponet_schedule_names_fused_kernels(self, calibration):
        graph = trace_model(make_model("temponet"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        sources = CodeGenerator(quantized).generate()
        network = sources["network.c"].content
        assert "net_conv1d_im2col_affine_relu_i8(" in network
        assert "net_conv1d_im2col_affine_relu_pool_i8(" in network
        kernels = sources["kernels.h"].content
        assert "void net_conv1d_im2col_affine_relu_pool_i8(" in kernels

    def test_bioformer_lut_gelu_fusion_tag(self, calibration):
        graph = trace_model(make_model("bio1"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        network = CodeGenerator(quantized).generate()["network.c"].content
        assert "net_linear_gemm_gelu_lut_i8(" in network
        elementwise = lower_to_int8(graph, calibration, use_lut=False, optimize=True)
        network = CodeGenerator(elementwise).generate()["network.c"].content
        assert "net_linear_gemm_gelu_i8(" in network

    def test_absorbed_constants_still_emitted(self, calibration):
        graph = trace_model(make_model("temponet"))
        default = lower_to_int8(graph, calibration)
        optimized = lower_to_int8(graph, calibration, optimize=True)
        weights_default = CodeGenerator(default).weights_header().content
        weights_optimized = CodeGenerator(optimized).weights_header().content
        # Fusion moves no bytes: the absorbed batch-norm scale/shift arrays
        # and every requantiser macro are emitted identically.
        assert weights_optimized == weights_default

    def test_every_scheduled_kernel_is_declared(self, calibration):
        import re

        graph = trace_model(make_model("temponet"))
        quantized = lower_to_int8(graph, calibration, optimize=True)
        sources = CodeGenerator(quantized).generate()
        called = set(re.findall(r"(net_\w+_i8)\(", sources["network.c"].content))
        declared = set(re.findall(r"void (net_\w+_i8)\(", sources["kernels.h"].content))
        assert called <= declared


# --------------------------------------------------------------------- #
# Serving integration
# --------------------------------------------------------------------- #
class TestServingIntegration:
    def test_optimized_backend_is_bitwise_equal(self, calibration, windows):
        model = make_model("temponet")
        default = build_int8_backend(model, calibration)
        optimized = build_int8_backend(model, calibration, optimize=True)
        assert len(optimized.quantized.graph) < len(default.quantized.graph)
        np.testing.assert_array_equal(
            default.run_integer(windows), optimized.run_integer(windows)
        )
        np.testing.assert_array_equal(default.run(windows), optimized.run(windows))

    def test_server_optimize_variant_cache_normalisation(self):
        cache = BackendCache()
        calibration = np.random.default_rng(12).normal(size=(8, 4, 60))
        kwargs = dict(
            patch_size=10, model_kwargs=GEOMETRY, calibration=calibration, cache=cache
        )
        x = np.random.default_rng(13).normal(size=(4, 4, 60))
        with InferenceServer("bio1", "int8", **kwargs) as default:
            with InferenceServer(
                "bio1", "int8", lower_kwargs={"optimize": True}, **kwargs
            ) as optimized:
                assert optimized.backend is not default.backend
                np.testing.assert_array_equal(default.infer(x), optimized.infer(x))
            assert len(cache) == 2
            # Explicit optimize=False is the default: one shared entry.
            with InferenceServer(
                "bio1", "int8", lower_kwargs={"optimize": False}, **kwargs
            ) as explicit:
                assert explicit.backend is default.backend
        assert len(cache) == 2
