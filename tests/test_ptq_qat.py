"""Tests of post-training quantisation and quantisation-aware training."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.models import bioformer_bio1, bioformer_bio2
from repro.nn import Tensor
from repro.quant import (
    QATConfig,
    QuantizationSpec,
    QuantizedModel,
    evaluate_quantized,
    quantization_aware_finetune,
    quantize_parameters,
)
from repro.training import ProtocolConfig, evaluate, train_subject_specific


@pytest.fixture(scope="module")
def trained_model(tiny_split, tiny_dataset):
    """A Bioformer trained briefly on the tiny dataset."""
    model = bioformer_bio1(
        patch_size=10, window_samples=tiny_dataset.config.window_samples, seed=0
    )
    train_subject_specific(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
    return model


# The module-scoped fixtures need session-scoped dependencies re-exported.
@pytest.fixture(scope="module")
def tiny_dataset():
    from repro.data import NinaProDB6, NinaProDB6Config

    return NinaProDB6(NinaProDB6Config.tiny())


@pytest.fixture(scope="module")
def tiny_split(tiny_dataset):
    from repro.data import subject_split

    return subject_split(tiny_dataset, 1)


class TestQuantizeParameters:
    def test_every_parameter_quantized(self):
        model = bioformer_bio2(patch_size=10, window_samples=100)
        quantized = quantize_parameters(model)
        assert set(quantized) == {name for name, _ in model.named_parameters()}
        assert all(q.values.dtype == np.int8 for q in quantized.values())

    def test_reconstruction_error_small(self):
        model = bioformer_bio1(patch_size=10, window_samples=100)
        quantized = quantize_parameters(model)
        for name, parameter in model.named_parameters():
            original = parameter.data
            reconstruction = quantized[name].dequantize()
            scale = float(np.max(np.abs(original))) + 1e-12
            assert np.max(np.abs(original - reconstruction)) <= scale / 127 + 1e-9


class TestQuantizedModel:
    def test_memory_matches_paper_table1(self):
        """Bio1 (filter 10) int8 snapshot is ~94 kB; Bio2 (filter 10) ~78 kB."""
        bio1 = QuantizedModel(bioformer_bio1(patch_size=10))
        bio2 = QuantizedModel(bioformer_bio2(patch_size=10))
        assert abs(bio1.memory_kilobytes - 94.2) < 4.0
        assert abs(bio2.memory_kilobytes - 78.3) < 4.0

    def test_compression_ratio_is_four(self):
        snapshot = QuantizedModel(bioformer_bio1(patch_size=10, window_samples=100))
        assert snapshot.report().compression_ratio == pytest.approx(4.0)

    def test_quantized_accuracy_close_to_float(self, trained_model, tiny_split):
        float_accuracy = evaluate(trained_model, tiny_split.test, num_classes=8).accuracy
        snapshot = QuantizedModel(trained_model)
        snapshot.calibrate(tiny_split.train)
        quantized_accuracy = snapshot.evaluate(tiny_split.test, num_classes=8).accuracy
        # Int8 costs at most a few points of accuracy (paper: ~1%).
        assert quantized_accuracy >= float_accuracy - 0.10

    def test_float_weights_restored_after_evaluation(self, trained_model, tiny_split):
        before = {name: p.data.copy() for name, p in trained_model.named_parameters()}
        snapshot = QuantizedModel(trained_model)
        snapshot.evaluate(tiny_split.test, num_classes=8)
        for name, parameter in trained_model.named_parameters():
            np.testing.assert_allclose(parameter.data, before[name])

    def test_evaluate_quantized_helper(self, trained_model, tiny_split):
        report = evaluate_quantized(
            trained_model, tiny_split.test, calibration=tiny_split.train, num_classes=8
        )
        assert 0.0 <= report.accuracy <= 1.0

    def test_lower_weight_bits_degrade_more(self, trained_model, tiny_split):
        int8 = evaluate_quantized(trained_model, tiny_split.test, num_classes=8, weight_bits=8)
        int3 = evaluate_quantized(trained_model, tiny_split.test, num_classes=8, weight_bits=3)
        assert int3.accuracy <= int8.accuracy + 0.05


class TestQAT:
    def test_qat_runs_and_keeps_weights_float(self, trained_model, tiny_split):
        before_dtype = next(iter(trained_model.parameters())).data.dtype
        result = quantization_aware_finetune(trained_model, tiny_split.train, QATConfig.tiny())
        assert result.epochs == 1
        assert 0.0 <= result.final_train_accuracy <= 1.0
        assert next(iter(trained_model.parameters())).data.dtype == before_dtype

    def test_qat_does_not_destroy_accuracy(self, tiny_split, tiny_dataset):
        model = bioformer_bio2(
            patch_size=10, window_samples=tiny_dataset.config.window_samples, seed=1
        )
        train_subject_specific(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
        float_accuracy = evaluate(model, tiny_split.test, num_classes=8).accuracy
        quantization_aware_finetune(model, tiny_split.train, QATConfig.tiny())
        quantized = evaluate_quantized(
            model, tiny_split.test, calibration=tiny_split.train, num_classes=8
        ).accuracy
        assert quantized >= float_accuracy - 0.15

    def test_qat_config_presets(self):
        assert QATConfig.paper().epochs >= QATConfig.small().epochs >= QATConfig.tiny().epochs
