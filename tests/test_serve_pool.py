"""WorkerPool and priority/deadline request-model tests.

The pool's contract mirrors the batcher's: no submitted job is lost, a
failing job fails only its own future, and ``close()`` drains everything
already queued.  The priority model's contract is ordering (lower priority
values form batches first, FIFO within a level) and deadline hygiene (an
expired request resolves with ``DeadlineExceeded`` without occupying a
batch slot or failing its batch-mates).
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve import (
    BackendTimeout,
    DeadlineExceeded,
    DynamicBatcher,
    Overloaded,
    PoolStats,
    Priority,
    WorkerCrash,
    WorkerPool,
)


# --------------------------------------------------------------------- #
# WorkerPool core behaviour
# --------------------------------------------------------------------- #
class TestWorkerPool:
    def test_jobs_run_and_results_propagate(self):
        with WorkerPool(num_workers=3) as pool:
            futures = [pool.submit(lambda i=i: i * i) for i in range(20)]
            assert [f.result(timeout=10.0) for f in futures] == [i * i for i in range(20)]
        assert pool.stats.jobs == 20

    def test_jobs_actually_overlap_across_workers(self):
        barrier = threading.Barrier(3, timeout=5.0)
        with WorkerPool(num_workers=3) as pool:
            futures = [pool.submit(barrier.wait) for _ in range(3)]
            # Each job blocks until all three run at once: only possible if
            # three workers execute concurrently.
            for future in futures:
                future.result(timeout=10.0)

    def test_failing_job_fails_only_its_own_future(self):
        def boom():
            raise RuntimeError("job exploded")

        with WorkerPool(num_workers=2) as pool:
            bad = pool.submit(boom)
            good = [pool.submit(lambda i=i: i) for i in range(5)]
            with pytest.raises(RuntimeError, match="job exploded"):
                bad.result(timeout=10.0)
            assert [f.result(timeout=10.0) for f in good] == list(range(5))
        stats = pool.stats
        assert stats.failures == 1
        assert stats.jobs == 6

    def test_close_drains_queued_jobs(self):
        done = []
        pool = WorkerPool(num_workers=2)
        futures = [pool.submit(lambda i=i: (time.sleep(0.005), done.append(i))[0]) for i in range(12)]
        pool.close()
        for future in futures:
            future.result(timeout=1.0)  # already done: close() drained
        assert sorted(done) == list(range(12))

    def test_submit_after_close_raises(self):
        pool = WorkerPool(num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(lambda: None)

    def test_cancelled_queued_job_is_skipped(self):
        with WorkerPool(num_workers=1) as pool:
            blocker = pool.submit(lambda: time.sleep(0.05))
            victim = pool.submit(lambda: pytest.fail("cancelled job must not run"))
            survivor = pool.submit(lambda: "ok")
            assert victim.cancel() or victim.result(timeout=10.0) is None
            assert survivor.result(timeout=10.0) == "ok"
            blocker.result(timeout=10.0)

    def test_stats_snapshot_is_immutable_and_balanced(self):
        with WorkerPool(num_workers=2) as pool:
            for f in [pool.submit(lambda: time.sleep(0.002)) for _ in range(10)]:
                f.result(timeout=10.0)
            stats = pool.stats
            assert isinstance(stats, PoolStats)
            with pytest.raises(AttributeError):
                stats.jobs = 0
            assert sum(stats.per_worker) == stats.jobs == 10
            assert stats.busiest_worker <= 10

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            WorkerPool(num_workers=0)


# --------------------------------------------------------------------- #
# Batcher on a pool: drain and identity under concurrency
# --------------------------------------------------------------------- #
def echo_batch(batch):
    return np.asarray(batch)


class TestBatcherOnPool:
    def test_every_request_answered_by_itself(self):
        with WorkerPool(num_workers=4) as pool:
            with DynamicBatcher(echo_batch, max_batch_size=4, max_wait_s=0.001, pool=pool) as batcher:
                futures = [batcher.submit(np.array([i])) for i in range(64)]
                results = [int(f.result(timeout=10.0)[0]) for f in futures]
        assert results == list(range(64))

    def test_close_drains_queue_and_inflight_pool_jobs(self):
        def slow_echo(batch):
            time.sleep(0.01)
            return np.asarray(batch)

        pool = WorkerPool(num_workers=3)
        batcher = DynamicBatcher(slow_echo, max_batch_size=2, max_wait_s=0.0, pool=pool)
        futures = [batcher.submit(np.array([i])) for i in range(30)]
        batcher.close()
        # close() returned only after every dispatched batch executed.
        assert all(f.done() for f in futures)
        assert [int(f.result(timeout=0)[0]) for f in futures] == list(range(30))
        assert pool.stats.jobs == batcher.stats.batches
        assert not pool.closed  # borrowed pools are never closed by the batcher
        pool.close()

    def test_borrowed_pool_closed_early_falls_back_to_inline(self):
        """Regression: a closed borrowed pool must not kill the forming
        thread — batches fall back to inline execution instead."""
        pool = WorkerPool(num_workers=2)
        with DynamicBatcher(echo_batch, max_batch_size=4, max_wait_s=0.001, pool=pool) as batcher:
            first = batcher.submit(np.array([1]))
            assert int(first.result(timeout=10.0)[0]) == 1
            pool.close()  # owner shuts the shared pool down early
            late = [batcher.submit(np.array([i])) for i in range(2, 6)]
            assert [int(f.result(timeout=10.0)[0]) for f in late] == [2, 3, 4, 5]

    def test_backend_error_contained_to_one_batch(self):
        calls = []
        lock = threading.Lock()

        def flaky(batch):
            with lock:
                calls.append(batch.shape[0])
            if int(batch[0, 0]) == 0:
                raise ValueError("poisoned batch")
            return np.asarray(batch)

        with WorkerPool(num_workers=2) as pool:
            with DynamicBatcher(flaky, max_batch_size=1, max_wait_s=0.0, pool=pool) as batcher:
                bad = batcher.submit(np.array([0]))
                good = [batcher.submit(np.array([i])) for i in range(1, 6)]
                with pytest.raises(ValueError, match="poisoned"):
                    bad.result(timeout=10.0)
                assert [int(f.result(timeout=10.0)[0]) for f in good] == [1, 2, 3, 4, 5]


# --------------------------------------------------------------------- #
# Priority ordering and deadlines (single-worker batcher for determinism)
# --------------------------------------------------------------------- #
class RecordingBackend:
    def __init__(self, delay_s=0.0):
        self.batches = []
        self.delay_s = delay_s
        self.lock = threading.Lock()

    def __call__(self, batch):
        if self.delay_s:
            time.sleep(self.delay_s)
        with self.lock:
            self.batches.append(np.asarray(batch).copy())
        return batch


class TestPriorityAndDeadlines:
    def test_high_priority_forms_batches_before_queued_low(self):
        backend = RecordingBackend(delay_s=0.02)
        with DynamicBatcher(backend, max_batch_size=4, max_wait_s=0.0) as batcher:
            blocker = batcher.submit(np.array([-1]))  # occupies the worker
            time.sleep(0.005)  # let the forming thread start the blocker batch
            bulk = [
                batcher.submit(np.array([i]), priority=Priority.LOW) for i in range(8)
            ]
            urgent = batcher.submit(np.array([100]), priority=Priority.HIGH)
            for future in [blocker, urgent, *bulk]:
                future.result(timeout=10.0)
        executed = [int(row[0]) for batch in backend.batches for row in batch]
        # The urgent request ran ahead of every bulk request, even though
        # all of the bulk work was queued before it.
        assert executed.index(100) < executed.index(0)
        # Same-priority bulk traffic kept FIFO order among itself.
        bulk_order = [v for v in executed if 0 <= v < 100]
        assert bulk_order == sorted(bulk_order)

    def test_preemption_survives_pool_dispatch(self):
        """Regression: unbounded dispatch used to drain every queued LOW
        request into the pool's FIFO job queue, so a later HIGH request
        waited behind all of them.  Dispatch is throttled to the worker
        count, so excess traffic waits in the priority queue instead."""
        backend = RecordingBackend(delay_s=0.01)
        with WorkerPool(num_workers=2) as pool:
            with DynamicBatcher(backend, max_batch_size=1, max_wait_s=0.0, pool=pool) as batcher:
                bulk = [
                    batcher.submit(np.array([i]), priority=Priority.LOW)
                    for i in range(20)
                ]
                time.sleep(0.005)  # let dispatch fill both workers
                urgent = batcher.submit(np.array([100]), priority=Priority.HIGH)
                urgent.result(timeout=10.0)
                still_pending = sum(not future.done() for future in bulk)
                for future in bulk:
                    future.result(timeout=10.0)
        # The HIGH request landed while most of the earlier-submitted LOW
        # bulk work was still waiting: at most the two in-flight batches
        # (plus scheduling slack) could run ahead of it.
        assert still_pending > len(bulk) // 2
        executed = [int(row[0]) for batch in backend.batches for row in batch]
        assert executed.index(100) < len(bulk) // 2

    def test_priority_ties_are_fifo(self):
        backend = RecordingBackend(delay_s=0.005)
        with DynamicBatcher(backend, max_batch_size=3, max_wait_s=0.0) as batcher:
            futures = [
                batcher.submit(np.array([i]), priority=Priority.NORMAL) for i in range(12)
            ]
            for future in futures:
                future.result(timeout=10.0)
        executed = [int(row[0]) for batch in backend.batches for row in batch]
        assert executed == list(range(12))

    def test_expired_request_resolves_with_deadline_exceeded(self):
        backend = RecordingBackend(delay_s=0.05)
        with DynamicBatcher(backend, max_batch_size=4, max_wait_s=0.0) as batcher:
            blocker = batcher.submit(np.array([-1]))  # worker busy for 50 ms
            time.sleep(0.01)  # ensure the blocker batch formed without us
            doomed = batcher.submit(np.array([0]), deadline_s=0.001)
            fine = batcher.submit(np.array([1]))
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10.0)
            # Batch-mates are unaffected by the expiry.
            assert int(fine.result(timeout=10.0)[0]) == 1
            blocker.result(timeout=10.0)
        executed = {int(row[0]) for batch in backend.batches for row in batch}
        assert 0 not in executed  # never occupied a batch slot
        assert batcher.stats.expired == 1

    def test_no_deadline_never_expires(self):
        with DynamicBatcher(echo_batch, max_batch_size=2, max_wait_s=0.0) as batcher:
            assert int(batcher.submit(np.array([7])).result(timeout=10.0)[0]) == 7
        assert batcher.stats.expired == 0

    def test_negative_deadline_rejected(self):
        with DynamicBatcher(echo_batch) as batcher:
            with pytest.raises(ValueError, match="deadline_s"):
                batcher.submit(np.array([1]), deadline_s=-0.5)

    def test_per_priority_stats(self):
        with DynamicBatcher(echo_batch, max_batch_size=4, max_wait_s=0.001) as batcher:
            futures = [
                batcher.submit(np.array([i]), priority=Priority.HIGH) for i in range(3)
            ] + [
                batcher.submit(np.array([i]), priority=Priority.LOW) for i in range(5)
            ]
            for future in futures:
                future.result(timeout=10.0)
        stats = batcher.stats
        assert stats.by_priority[int(Priority.HIGH)] == 3
        assert stats.by_priority[int(Priority.LOW)] == 5
        assert stats.requests == 8


# --------------------------------------------------------------------- #
# Supervision: crash detection, soft timeouts, restart budgets
# --------------------------------------------------------------------- #
def _wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSupervision:
    def test_crashed_worker_is_respawned(self):
        def crash():
            raise WorkerCrash("native kernel segfaulted")

        with WorkerPool(num_workers=2, supervise_interval_s=0.005) as pool:
            doomed = pool.submit(crash)
            with pytest.raises(WorkerCrash):
                doomed.result(timeout=10.0)
            # Supervision notices the dead thread and refills the slot.
            assert _wait_until(lambda: pool.alive_workers == 2)
            assert _wait_until(lambda: pool.stats.restarts >= 1)
            # The respawned worker actually serves traffic.
            assert pool.submit(lambda: 41 + 1).result(timeout=10.0) == 42
        stats = pool.stats
        assert stats.crashes >= 1
        assert stats.failures >= 1

    def test_hung_job_fails_fast_and_worker_is_abandoned(self):
        release = threading.Event()

        def hang():
            release.wait(timeout=10.0)
            return "late"

        pool = WorkerPool(num_workers=2, job_timeout_s=0.05, supervise_interval_s=0.005)
        try:
            stuck = pool.submit(hang)
            start = time.monotonic()
            with pytest.raises(BackendTimeout):
                stuck.result(timeout=10.0)
            # The caller got its answer near the soft timeout, not after
            # the full 10 s hang.
            assert time.monotonic() - start < 5.0
            assert _wait_until(lambda: pool.alive_workers == 2)
            assert pool.stats.timeouts == 1
            # A fresh worker owns the slot; quick jobs still flow.
            assert pool.submit(lambda: "ok").result(timeout=10.0) == "ok"
        finally:
            release.set()  # unstick the abandoned thread so close() is clean
            pool.close()

    def test_late_result_of_abandoned_job_is_discarded(self):
        release = threading.Event()

        def hang():
            release.wait(timeout=10.0)
            return "late"

        pool = WorkerPool(num_workers=1, job_timeout_s=0.05, supervise_interval_s=0.005)
        try:
            stuck = pool.submit(hang)
            with pytest.raises(BackendTimeout):
                stuck.result(timeout=10.0)
            release.set()  # the abandoned thread now finishes...
            time.sleep(0.1)
            # ...but its late result cannot overwrite the timeout verdict.
            with pytest.raises(BackendTimeout):
                stuck.result(timeout=0)
        finally:
            release.set()
            pool.close()

    def test_restart_budget_exhaustion_shrinks_the_pool(self):
        def crash():
            raise WorkerCrash("again")

        with WorkerPool(num_workers=2, max_restarts=1, supervise_interval_s=0.005) as pool:
            first = pool.submit(crash)
            with pytest.raises(WorkerCrash):
                first.result(timeout=10.0)
            assert _wait_until(lambda: pool.stats.restarts == 1)
            second = pool.submit(crash)
            with pytest.raises(WorkerCrash):
                second.result(timeout=10.0)
            # Budget spent: the second dead slot stays dead.
            assert _wait_until(lambda: pool.alive_workers == 1)
            assert pool.stats.restarts == 1
            # The surviving worker still serves.
            assert pool.submit(lambda: 7).result(timeout=10.0) == 7

    def test_supervised_pool_counters_stay_balanced(self):
        def crash():
            raise WorkerCrash("boom")

        with WorkerPool(num_workers=3, supervise_interval_s=0.005) as pool:
            futures = [pool.submit(lambda i=i: i) for i in range(10)]
            doomed = pool.submit(crash)
            more = [pool.submit(lambda i=i: -i) for i in range(10)]
            assert [f.result(timeout=10.0) for f in futures] == list(range(10))
            with pytest.raises(WorkerCrash):
                doomed.result(timeout=10.0)
            assert [f.result(timeout=10.0) for f in more] == [-i for i in range(10)]
        stats = pool.stats
        assert sum(stats.per_worker) == stats.jobs == 21
        assert stats.failures == 1


# --------------------------------------------------------------------- #
# Admission control and load shedding
# --------------------------------------------------------------------- #
class TestLoadShedding:
    def _blocked_batcher(self, max_queue_depth):
        """A batcher whose (single) forming thread is stuck in the backend,
        so submissions pile up in the queue deterministically."""
        release = threading.Event()
        entered = threading.Event()

        def blocking_backend(batch):
            entered.set()
            release.wait(timeout=10.0)
            return np.asarray(batch)

        batcher = DynamicBatcher(
            blocking_backend,
            max_batch_size=1,
            max_wait_s=0.0,
            max_queue_depth=max_queue_depth,
        )
        plug = batcher.submit(np.array([99]))  # occupies the forming thread
        assert entered.wait(timeout=10.0)
        return batcher, release, plug

    def test_full_queue_rejects_equal_priority_synchronously(self):
        batcher, release, plug = self._blocked_batcher(max_queue_depth=2)
        try:
            queued = [batcher.submit(np.array([i]), priority=Priority.LOW) for i in range(2)]
            with pytest.raises(Overloaded):
                batcher.submit(np.array([5]), priority=Priority.LOW)
            release.set()
            assert [int(f.result(timeout=10.0)[0]) for f in queued] == [0, 1]
            plug.result(timeout=10.0)
        finally:
            release.set()
            batcher.close()
        stats = batcher.stats
        assert stats.rejected == 1
        assert stats.shed == 0

    def test_high_priority_sheds_newest_low_when_full(self):
        batcher, release, plug = self._blocked_batcher(max_queue_depth=2)
        try:
            low_old = batcher.submit(np.array([1]), priority=Priority.LOW)
            low_new = batcher.submit(np.array([2]), priority=Priority.LOW)
            high = batcher.submit(np.array([3]), priority=Priority.HIGH)
            # The newest LOW was evicted to admit the HIGH request...
            with pytest.raises(Overloaded):
                low_new.result(timeout=10.0)
            release.set()
            # ...and both survivors are served.
            assert int(high.result(timeout=10.0)[0]) == 3
            assert int(low_old.result(timeout=10.0)[0]) == 1
            plug.result(timeout=10.0)
        finally:
            release.set()
            batcher.close()
        stats = batcher.stats
        assert stats.shed == 1
        assert stats.rejected == 0

    def test_low_never_sheds_high(self):
        batcher, release, plug = self._blocked_batcher(max_queue_depth=2)
        try:
            highs = [batcher.submit(np.array([i]), priority=Priority.HIGH) for i in range(2)]
            with pytest.raises(Overloaded):
                batcher.submit(np.array([9]), priority=Priority.LOW)
            release.set()
            assert [int(f.result(timeout=10.0)[0]) for f in highs] == [0, 1]
            plug.result(timeout=10.0)
        finally:
            release.set()
            batcher.close()
        assert batcher.stats.rejected == 1
        assert batcher.stats.shed == 0

    def test_queue_depth_stat_tracks_pending(self):
        batcher, release, plug = self._blocked_batcher(max_queue_depth=8)
        try:
            for i in range(3):
                batcher.submit(np.array([i]))
            assert batcher.stats.queue_depth == 3
            release.set()
        finally:
            release.set()
            batcher.close()
        assert batcher.stats.queue_depth == 0

    def test_queue_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            DynamicBatcher(echo_batch, max_queue_depth=0)

    def test_deadline_expiry_under_sustained_saturation(self):
        """The satellite scenario: a saturating mixed-priority storm on a
        slow backend.  HIGH requests (generous deadlines) must all be
        served; LOW requests (tight deadlines, shed first) end up served,
        expired or shed — and every single future resolves."""
        backend = RecordingBackend(delay_s=0.01)
        with DynamicBatcher(
            backend, max_batch_size=2, max_wait_s=0.0, max_queue_depth=8
        ) as batcher:
            high, low, rejected = [], [], 0
            for i in range(60):
                try:
                    if i % 3 == 0:
                        high.append(batcher.submit(np.array([i]), priority=Priority.HIGH, deadline_s=30.0))
                    else:
                        low.append(batcher.submit(np.array([i]), priority=Priority.LOW, deadline_s=0.02))
                except Overloaded:
                    rejected += 1
            served_low = expired_low = shed_low = 0
            for future in high:
                future.result(timeout=30.0)  # every HIGH answered
            for future in low:
                try:
                    future.result(timeout=30.0)
                    served_low += 1
                except DeadlineExceeded:
                    expired_low += 1
                except Overloaded:
                    shed_low += 1
        # No request is unaccounted for.
        assert served_low + expired_low + shed_low == len(low)
        assert expired_low + shed_low > 0  # the storm actually saturated
        stats = batcher.stats
        assert stats.shed == shed_low
        assert stats.rejected == rejected
        assert stats.expired == expired_low
        assert stats.requests == len(high) + served_low
        assert stats.queue_depth == 0
        # Priority accounting matches what was actually served.
        assert stats.by_priority.get(int(Priority.HIGH), 0) == len(high)
        assert stats.by_priority.get(int(Priority.LOW), 0) == served_low
