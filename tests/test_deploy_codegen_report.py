"""Tests for the C code generator and the end-to-end deployment report."""

import os
import re

import numpy as np
import pytest

from repro.deploy import (
    CodeGenerator,
    deploy_graph,
    generate_c_sources,
    graph_to_profile,
    lower_to_int8,
    plan_activation_memory,
    trace_bioformer,
    trace_temponet,
)
from repro.hw.gap8 import GAP8Config, GAP8Model
from repro.hw.profiler import profile_bioformer
from repro.models import Bioformer, BioformerConfig, bioformer_bio1, temponet


def small_bioformer(**overrides):
    config = BioformerConfig(
        num_channels=4, window_samples=60, patch_size=10, depth=1, num_heads=2, seed=31, **overrides
    )
    return Bioformer(config).eval()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(123)


@pytest.fixture(scope="module")
def quantized_bioformer(rng):
    graph = trace_bioformer(small_bioformer())
    return lower_to_int8(graph, rng.normal(size=(8, 4, 60)))


# --------------------------------------------------------------------- #
# Code generation
# --------------------------------------------------------------------- #
class TestCodegen:
    def test_bundle_contains_four_files(self, quantized_bioformer):
        sources = generate_c_sources(quantized_bioformer)
        assert set(sources) == {"weights.h", "kernels.h", "network.h", "network.c"}

    def test_every_node_emitted_in_schedule(self, quantized_bioformer):
        network = generate_c_sources(quantized_bioformer)["network.c"].content
        for node in quantized_bioformer.graph:
            assert node.name in network

    def test_weight_arrays_match_constant_sizes(self, quantized_bioformer):
        weights = generate_c_sources(quantized_bioformer)["weights.h"].content
        for node_name, lowered in quantized_bioformer.nodes.items():
            for role, constant in lowered.constants.items():
                identifier = f"{node_name.replace('.', '_')}_{role}"
                match = re.search(rf"{identifier}\[(\d+)\]", weights)
                assert match is not None, f"missing array {identifier}"
                assert int(match.group(1)) == constant.values.size

    def test_requantizer_macros_emitted(self, quantized_bioformer):
        weights = generate_c_sources(quantized_bioformer)["weights.h"].content
        assert "_MULTIPLIER" in weights and "_SHIFT" in weights

    def test_network_header_macros(self, quantized_bioformer):
        header = generate_c_sources(quantized_bioformer)["network.h"].content
        graph = quantized_bioformer.graph
        assert f"#define NETWORK_INPUT_SIZE {graph.graph_input.num_elements}" in header
        assert f"#define NETWORK_OUTPUT_SIZE {graph.output.num_elements}" in header
        assert "NETWORK_ARENA_BYTES" in header
        assert "void network_run(" in header

    def test_arena_size_matches_memory_plan(self, quantized_bioformer):
        plan = plan_activation_memory(quantized_bioformer.graph)
        header = CodeGenerator(quantized_bioformer, plan).network_header().content
        assert f"#define NETWORK_ARENA_BYTES {plan.peak_bytes}" in header

    def test_schedule_uses_input_output_and_arena(self, quantized_bioformer):
        network = generate_c_sources(quantized_bioformer)["network.c"].content
        assert "(const int8_t *)(input)" in network
        assert "(int8_t *)(output)" in network
        assert "arena + " in network

    def test_kernel_prototypes_cover_schedule(self, quantized_bioformer):
        sources = generate_c_sources(quantized_bioformer)
        kernels = sources["kernels.h"].content
        network = sources["network.c"].content
        called = set(re.findall(r"(net_\w+)\(\(const", network))
        declared = set(re.findall(r"void (net_\w+)\(", kernels))
        assert called <= declared

    def test_write_bundle_to_directory(self, quantized_bioformer, tmp_path):
        written = CodeGenerator(quantized_bioformer).write(str(tmp_path))
        assert len(written) == 4
        for path in written:
            assert os.path.exists(path)
            assert os.path.getsize(path) > 0

    def test_temponet_codegen(self, rng):
        model = temponet(num_channels=4, window_samples=80, seed=31).eval()
        quantized = lower_to_int8(trace_temponet(model), rng.normal(size=(4, 4, 80)))
        sources = generate_c_sources(quantized)
        # Default schedule routes MAC nodes through the im2col/GEMM kernels
        # and publishes the tile geometry macros.
        assert "net_conv1d_im2col_i8" in sources["network.c"].content
        assert "net_channel_affine_i8" in sources["network.c"].content
        assert "_GEMM_M" in sources["weights.h"].content

    def test_temponet_codegen_legacy_gemm_opt_out(self, rng):
        model = temponet(num_channels=4, window_samples=80, seed=31).eval()
        quantized = lower_to_int8(trace_temponet(model), rng.normal(size=(4, 4, 80)))
        sources = generate_c_sources(quantized, use_gemm=False)
        network = sources["network.c"].content
        called = set(re.findall(r"(net_\w+)\(\(const", network))
        assert "net_conv1d_i8" in called
        assert "net_conv1d_im2col_i8" not in called
        assert "_GEMM_M" not in sources["weights.h"].content


# --------------------------------------------------------------------- #
# graph -> ModelProfile adapter
# --------------------------------------------------------------------- #
class TestGraphProfileAdapter:
    def test_macs_preserved(self):
        graph = trace_bioformer(bioformer_bio1(patch_size=10).eval())
        profile = graph_to_profile(graph)
        assert profile.total_macs == graph.total_macs

    def test_shape_only_nodes_skipped(self):
        graph = trace_bioformer(small_bioformer())
        profile = graph_to_profile(graph)
        assert all("split" not in layer.name and "merge" not in layer.name for layer in profile.layers)

    def test_traced_profile_close_to_analytical(self):
        config = BioformerConfig(patch_size=10, depth=1, num_heads=8)
        traced = graph_to_profile(trace_bioformer(Bioformer(config).eval()))
        analytical = profile_bioformer(config)
        assert traced.total_macs == pytest.approx(analytical.total_macs, rel=0.02)
        assert traced.total_params == pytest.approx(analytical.total_params, rel=0.02)

    def test_latency_estimate_runs_on_traced_profile(self):
        graph = trace_bioformer(small_bioformer())
        breakdown = GAP8Model(GAP8Config()).latency(graph_to_profile(graph))
        assert breakdown.latency_ms > 0
        assert breakdown.energy_mj > 0


# --------------------------------------------------------------------- #
# End-to-end deployment report
# --------------------------------------------------------------------- #
class TestDeployGraph:
    def test_full_pipeline_small_model(self, rng):
        model = small_bioformer()
        calibration = rng.normal(size=(16, 4, 60))
        evaluation = rng.normal(size=(20, 4, 60))
        labels = rng.integers(0, 8, size=20)
        report = deploy_graph(model, calibration, evaluation, labels)
        assert report.fits_l2
        assert report.weight_kilobytes > 0
        assert report.latency_ms > 0
        assert 0.0 <= report.int8_accuracy <= 1.0
        assert 0.0 <= report.float_agreement <= 1.0
        assert report.duty_cycle is not None
        assert set(report.sources) == {"weights.h", "kernels.h", "network.h", "network.c"}

    def test_render_mentions_key_quantities(self, rng):
        model = small_bioformer()
        report = deploy_graph(model, rng.normal(size=(8, 4, 60)), generate_code=False)
        text = report.render()
        for keyword in ("weights", "latency", "energy", "MMAC", "L2"):
            assert keyword in text

    def test_without_evaluation_no_accuracy(self, rng):
        report = deploy_graph(small_bioformer(), rng.normal(size=(8, 4, 60)), generate_code=False)
        assert report.int8_accuracy is None
        assert report.float_agreement is None

    def test_without_period_no_battery(self, rng):
        report = deploy_graph(
            small_bioformer(),
            rng.normal(size=(8, 4, 60)),
            inference_period_s=None,
            generate_code=False,
        )
        assert report.duty_cycle is None

    def test_paper_scale_bio1_headline_numbers(self, rng):
        """Bio1 (f=10) must reproduce the shape of the paper's Table I row:
        ~94 kB of weights, ~3.3 MMAC, a few ms of latency, well inside L2."""
        model = bioformer_bio1(patch_size=10).eval()
        report = deploy_graph(model, rng.normal(size=(2, 14, 300)), generate_code=False)
        assert 85.0 <= report.weight_kilobytes <= 110.0
        assert 2.5 <= report.mmacs <= 4.5
        assert report.fits_l2
        assert report.latency_ms < 10.0

    def test_temponet_is_heavier_than_bioformer(self, rng):
        bio_report = deploy_graph(
            bioformer_bio1(patch_size=10).eval(),
            rng.normal(size=(2, 14, 300)),
            generate_code=False,
        )
        tcn_report = deploy_graph(
            temponet().eval(), rng.normal(size=(2, 14, 300)), generate_code=False
        )
        assert tcn_report.weight_kilobytes > 3.0 * bio_report.weight_kilobytes
        assert tcn_report.mmacs > 3.0 * bio_report.mmacs
        assert tcn_report.energy_mj > bio_report.energy_mj
