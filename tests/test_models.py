"""Tests of the Bioformer and TEMPONet architectures."""

import numpy as np
import pytest

from repro.models import (
    Bioformer,
    BioformerConfig,
    TEMPONet,
    TEMPONetConfig,
    available_models,
    bioformer_bio1,
    bioformer_bio2,
    bioformer_filter_sweep,
    bioformer_grid,
    build_model,
    temponet,
)
from repro.nn import Tensor


class TestBioformerConfig:
    def test_paper_defaults(self):
        config = BioformerConfig()
        assert config.embed_dim == 64
        assert config.head_dim == 32
        assert config.hidden_dim == 128
        assert config.num_channels == 14
        assert config.window_samples == 300
        assert config.num_classes == 8

    def test_token_count_per_filter_dimension(self):
        """300-sample windows: filter {1,5,10,20,30} -> {300,60,30,15,10} tokens."""
        for patch, expected in [(1, 300), (5, 60), (10, 30), (20, 15), (30, 10)]:
            config = BioformerConfig(patch_size=patch)
            assert config.num_tokens == expected
            assert config.sequence_length == expected + 1  # class token

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            BioformerConfig(patch_size=0).validate()
        with pytest.raises(ValueError):
            BioformerConfig(patch_size=400).validate()
        with pytest.raises(ValueError):
            BioformerConfig(depth=0).validate()
        with pytest.raises(ValueError):
            BioformerConfig(pooling="cls").validate()

    def test_with_patch_size_copy(self):
        config = BioformerConfig(patch_size=10)
        other = config.with_patch_size(30)
        assert other.patch_size == 30 and config.patch_size == 10

    def test_describe(self):
        assert BioformerConfig(num_heads=8, depth=1, patch_size=10).describe() == "Bioformer(h=8,d=1,f=10)"


class TestBioformerModel:
    def test_forward_shape(self, rng):
        model = bioformer_bio1(patch_size=10, window_samples=100)
        out = model(Tensor(rng.standard_normal((4, 14, 100))))
        assert out.shape == (4, 8)

    def test_accepts_raw_numpy(self, rng):
        model = bioformer_bio2(patch_size=10, window_samples=100)
        assert model(rng.standard_normal((2, 14, 100))).shape == (2, 8)

    def test_bio1_parameter_count_matches_paper_memory(self):
        """Paper Table I: Bio1 (filter 10) occupies 94.2 kB as int8."""
        model = bioformer_bio1(patch_size=10)
        assert abs(model.num_parameters() - 94_200) < 4_000

    def test_bio2_parameter_count_matches_paper_memory(self):
        """Paper Table I: Bio2 (filter 10) occupies 78.3 kB as int8."""
        model = bioformer_bio2(patch_size=10)
        assert abs(model.num_parameters() - 78_300) < 4_000

    def test_bio1_has_one_block_bio2_has_two(self):
        assert len(bioformer_bio1().blocks) == 1
        assert len(bioformer_bio2().blocks) == 2
        assert bioformer_bio1().blocks[0].attention.num_heads == 8
        assert bioformer_bio2().blocks[0].attention.num_heads == 2

    def test_filter_dimension_only_changes_first_layer_params(self):
        """Fig. 5b: the filter dimension barely moves the parameter count —
        only the front-end convolution and the positional embedding change."""
        params = {f: bioformer_bio1(patch_size=f).num_parameters() for f in (10, 30)}
        conv_delta = 14 * 64 * 20  # conv kernel grows from 10 to 30 taps
        position_delta = (300 // 10 - 300 // 30) * 64  # fewer tokens -> fewer positions
        assert params[30] - params[10] == conv_delta - position_delta
        # And the overall change is small relative to the model (paper Fig. 5b).
        assert abs(params[30] - params[10]) / params[10] < 0.25

    def test_mean_pooling_variant(self, rng):
        model = Bioformer(BioformerConfig(window_samples=100, patch_size=10, pooling="mean"))
        assert model(Tensor(rng.standard_normal((2, 14, 100)))).shape == (2, 8)
        assert not hasattr(model, "class_token")

    def test_no_positional_embedding_variant(self, rng):
        model = Bioformer(
            BioformerConfig(window_samples=100, patch_size=10, use_positional_embedding=False)
        )
        assert model(Tensor(rng.standard_normal((1, 14, 100)))).shape == (1, 8)
        assert not hasattr(model, "positional_embedding")

    def test_wrong_input_shape_raises(self, rng):
        model = bioformer_bio1(patch_size=10, window_samples=100)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((2, 10, 100))))

    def test_attention_maps_exposed(self, rng):
        model = bioformer_bio1(patch_size=10, window_samples=100)
        model.eval()
        model(Tensor(rng.standard_normal((2, 14, 100))))
        maps = model.attention_maps()
        assert len(maps) == 1
        assert maps[0].shape == (2, 8, 11, 11)  # 10 tokens + class token

    def test_deterministic_construction(self, rng):
        a = bioformer_bio1(patch_size=10, window_samples=100, seed=3)
        b = bioformer_bio1(patch_size=10, window_samples=100, seed=3)
        x = rng.standard_normal((1, 14, 100))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_gradients_reach_every_parameter(self, rng):
        model = bioformer_bio2(patch_size=20, window_samples=100)
        from repro.nn import functional as F

        logits = model(Tensor(rng.standard_normal((4, 14, 100))))
        F.cross_entropy(logits, np.array([0, 1, 2, 3])).backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_features_output_dim(self, rng):
        model = bioformer_bio1(patch_size=10, window_samples=100)
        features = model.features(Tensor(rng.standard_normal((3, 14, 100))))
        assert features.shape == (3, 64)


class TestTEMPONet:
    def test_forward_shape(self, rng):
        model = temponet(window_samples=100)
        assert model(Tensor(rng.standard_normal((2, 14, 100)))).shape == (2, 8)

    def test_parameter_count_matches_paper_memory(self):
        """Paper Table I: TEMPONet occupies ~461 kB as int8."""
        model = temponet(window_samples=300)
        assert abs(model.num_parameters() - 461_000) < 15_000

    def test_larger_than_bioformer(self):
        """The headline memory claim: ~4.9x larger than Bio1."""
        ratio = temponet().num_parameters() / bioformer_bio1(patch_size=10).num_parameters()
        assert 4.0 < ratio < 6.0

    def test_window_too_short_raises(self):
        with pytest.raises(ValueError):
            TEMPONetConfig(window_samples=8).validate()

    def test_wrong_channel_count_raises(self, rng):
        model = temponet(window_samples=100)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((1, 3, 100))))

    def test_feature_map_channels(self, rng):
        model = temponet(window_samples=300)
        features = model.features(Tensor(rng.standard_normal((1, 14, 300))))
        assert features.shape[1] == 128  # last block channel width

    def test_gradients_reach_every_parameter(self, rng):
        from repro.nn import functional as F

        model = temponet(window_samples=64)
        logits = model(Tensor(rng.standard_normal((4, 14, 64))))
        F.cross_entropy(logits, np.array([0, 1, 2, 3])).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {"bio1", "bio2", "temponet"}

    def test_build_model_dispatch(self):
        assert isinstance(build_model("bio1"), Bioformer)
        assert isinstance(build_model("TEMPONET"), TEMPONet)
        with pytest.raises(KeyError):
            build_model("resnet")

    def test_build_temponet_ignores_patch_size(self):
        model = build_model("temponet", patch_size=10, window_samples=300)
        assert isinstance(model, TEMPONet)

    def test_grid_covers_paper_search_space(self):
        configs = bioformer_grid()
        assert len(configs) == 16
        assert {(c.depth, c.num_heads) for c in configs} == {
            (d, h) for d in (1, 2, 3, 4) for h in (1, 2, 4, 8)
        }

    def test_filter_sweep(self):
        models = bioformer_filter_sweep("bio1", window_samples=300)
        assert len(models) == 5
        assert [m.config.patch_size for m in models] == [1, 5, 10, 20, 30]
        with pytest.raises(ValueError):
            bioformer_filter_sweep("bio3")
