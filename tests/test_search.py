"""Tests for the architecture-search package (space, objectives, strategies)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.models.bioformer import BioformerConfig
from repro.search import (
    CandidateEvaluation,
    ComplexityEvaluator,
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    SearchSpace,
    TrainedAccuracyEvaluator,
    candidate_name,
    evaluate_candidate,
)


def proxy_accuracy(config: BioformerConfig) -> dict:
    """Deterministic stand-in for training: prefers 8 heads and filter 10.

    Mirrors the paper's empirical finding so strategy tests have a known
    optimum without paying for actual training.
    """
    score = 0.5
    score += 0.04 * (config.num_heads / 8.0)
    score -= 0.02 * abs(config.patch_size - 10) / 10.0
    score -= 0.01 * (config.depth - 1)
    return {"accuracy": score, "train_accuracy": score + 0.1}


@pytest.fixture(scope="module")
def small_space():
    return SearchSpace(
        depths=(1, 2),
        heads=(2, 4, 8),
        patch_sizes=(5, 10, 20),
        num_channels=4,
        window_samples=60,
    )


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


# --------------------------------------------------------------------- #
# Search space
# --------------------------------------------------------------------- #
class TestSearchSpace:
    def test_size_and_enumeration_agree(self, small_space):
        candidates = list(small_space.enumerate())
        assert len(candidates) == small_space.size == 2 * 3 * 3

    def test_enumeration_yields_valid_unique_configs(self, small_space):
        names = [candidate_name(config) for config in small_space.enumerate()]
        assert len(set(names)) == len(names)
        for config in small_space.enumerate():
            config.validate()
            assert small_space.contains(config)

    def test_sample_within_space(self, small_space, rng):
        for _ in range(20):
            assert small_space.contains(small_space.sample(rng))

    def test_mutate_changes_exactly_one_axis(self, small_space, rng):
        config = small_space.make_config(depth=1, num_heads=4, patch_size=10)
        for _ in range(20):
            mutated = small_space.mutate(config, rng)
            assert small_space.contains(mutated)
            differences = sum(
                getattr(mutated, name) != getattr(config, name)
                for name in ("depth", "num_heads", "patch_size", "embed_dim", "hidden_dim")
            )
            assert differences == 1

    def test_mutate_single_point_space_is_identity(self, rng):
        space = SearchSpace(
            depths=(1,), heads=(2,), patch_sizes=(10,), num_channels=4, window_samples=60
        )
        config = space.make_config(1, 2, 10)
        mutated = space.mutate(config, rng)
        assert candidate_name(mutated) == candidate_name(config)

    def test_crossover_stays_in_space(self, small_space, rng):
        first = small_space.make_config(1, 2, 5)
        second = small_space.make_config(2, 8, 20)
        for _ in range(10):
            child = small_space.crossover(first, second, rng)
            assert small_space.contains(child)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(depths=()).validate()

    def test_patch_larger_than_window_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(patch_sizes=(500,), window_samples=300).validate()

    def test_paper_space_matches_paper_grid(self):
        space = SearchSpace.paper()
        assert space.depths == (1, 2, 3, 4)
        assert space.heads == (1, 2, 4, 8)
        assert space.patch_sizes == (1, 5, 10, 20, 30)
        assert space.size == 4 * 4 * 5

    def test_reduced_space_respects_window(self):
        space = SearchSpace.reduced(num_channels=4, window_samples=40)
        assert all(patch <= 10 for patch in space.patch_sizes)
        assert space.size > 0

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sampling_property(self, seed):
        space = SearchSpace.reduced(num_channels=4, window_samples=60)
        config = space.sample(np.random.default_rng(seed))
        config.validate()
        assert space.contains(config)


# --------------------------------------------------------------------- #
# Objectives
# --------------------------------------------------------------------- #
class TestObjectives:
    def test_complexity_evaluator_keys(self, small_space):
        cost = ComplexityEvaluator()(small_space.make_config(1, 8, 10))
        assert set(cost) == {"params", "macs", "latency_ms", "energy_mj", "memory_kb"}
        assert all(value > 0 for value in cost.values())

    def test_larger_model_costs_more(self, small_space):
        evaluator = ComplexityEvaluator()
        small = evaluator(small_space.make_config(1, 2, 20))
        large = evaluator(small_space.make_config(2, 8, 5))
        assert large["macs"] > small["macs"]
        assert large["params"] > small["params"]
        assert large["latency_ms"] > small["latency_ms"]

    def test_evaluate_candidate_bundle(self, small_space):
        evaluation = evaluate_candidate(small_space.make_config(1, 8, 10), proxy_accuracy)
        assert isinstance(evaluation, CandidateEvaluation)
        assert evaluation.name == "h8-d1-f10-e64-m128"
        assert evaluation.accuracy == pytest.approx(0.54)
        assert evaluation.mmacs == evaluation.macs / 1e6

    def test_constraint_checking(self, small_space):
        evaluation = evaluate_candidate(small_space.make_config(1, 8, 10), proxy_accuracy)
        assert evaluation.meets({"max_macs": evaluation.macs + 1})
        assert not evaluation.meets({"max_macs": evaluation.macs - 1})
        with pytest.raises(KeyError):
            evaluation.meets({"max_flops": 1.0})

    def test_trained_evaluator_on_tiny_dataset(self):
        dataset = NinaProDB6(NinaProDB6Config.tiny())
        split = subject_split(dataset, 1, include_pretrain=False)
        channels, samples = split.train.windows.shape[1:]
        space = SearchSpace.reduced(channels, samples)
        evaluator = TrainedAccuracyEvaluator(split.train, split.test, epochs=1, seed=0)
        quality = evaluator(space.make_config(1, 2, space.patch_sizes[-1]))
        assert 0.0 <= quality["accuracy"] <= 1.0
        assert 0.0 <= quality["train_accuracy"] <= 1.0

    def test_trained_evaluator_rejects_empty_dataset(self):
        from repro.data import ArrayDataset

        empty = ArrayDataset(np.empty((0, 4, 10)), np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            TrainedAccuracyEvaluator(empty, empty)


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
class TestStrategies:
    def test_grid_search_covers_space(self, small_space):
        result = GridSearch(small_space, proxy_accuracy).run()
        assert result.num_evaluations == small_space.size
        # The proxy prefers 8 heads, depth 1, filter 10 — grid search must find it.
        assert result.best.name == "h8-d1-f10-e64-m128"

    def test_random_search_budget_and_uniqueness(self, small_space):
        result = RandomSearch(small_space, proxy_accuracy, seed=3).run(budget=6)
        assert result.num_evaluations == 6
        names = [candidate.name for candidate in result.history]
        assert len(set(names)) == len(names)

    def test_random_search_budget_capped_by_space(self, small_space):
        result = RandomSearch(small_space, proxy_accuracy, seed=3).run(budget=1000)
        assert result.num_evaluations <= small_space.size

    def test_random_search_invalid_budget(self, small_space):
        with pytest.raises(ValueError):
            RandomSearch(small_space, proxy_accuracy).run(budget=0)

    def test_evolutionary_search_improves_or_matches_initial_population(self, small_space):
        search = EvolutionarySearch(
            small_space, proxy_accuracy, population_size=4, seed=7
        )
        result = search.run(generations=3)
        initial_best = max(result.history[:4], key=lambda candidate: candidate.accuracy)
        assert result.best.accuracy >= initial_best.accuracy
        assert result.num_evaluations == 4 + 3 * 4

    def test_evolutionary_parameter_validation(self, small_space):
        with pytest.raises(ValueError):
            EvolutionarySearch(small_space, proxy_accuracy, population_size=1)
        with pytest.raises(ValueError):
            EvolutionarySearch(small_space, proxy_accuracy, tournament_size=0)
        with pytest.raises(ValueError):
            EvolutionarySearch(small_space, proxy_accuracy).run(generations=0)

    def test_constraints_steer_best_candidate(self, small_space):
        # Without constraints the best proxy model is the 8-head one; with a
        # tight MAC budget the best *feasible* model must respect the budget.
        unconstrained = GridSearch(small_space, proxy_accuracy).run()
        budget = 0.8 * unconstrained.best.macs
        constrained = GridSearch(small_space, proxy_accuracy, constraints={"max_macs": budget}).run()
        assert constrained.best.macs <= budget

    def test_infeasible_history_kept_for_pareto(self, small_space):
        result = GridSearch(
            small_space, proxy_accuracy, constraints={"max_macs": 1}
        ).run()
        assert result.feasible() == []
        assert result.best is not None  # falls back to the full history
        assert len(result.pareto()) >= 1

    def test_pareto_frontier_is_nondominated(self, small_space):
        result = GridSearch(small_space, proxy_accuracy).run()
        frontier = result.pareto("macs")
        for first in frontier:
            for second in frontier:
                if first is second:
                    continue
                dominated = second.cost <= first.cost and second.accuracy >= first.accuracy and (
                    second.cost < first.cost or second.accuracy > first.accuracy
                )
                assert not dominated

    def test_pareto_supports_every_cost_axis(self, small_space):
        result = RandomSearch(small_space, proxy_accuracy, seed=1).run(budget=5)
        for cost in ("macs", "params", "latency_ms", "energy_mj", "memory_kb"):
            assert len(result.pareto(cost)) >= 1

    def test_render_table(self, small_space):
        result = RandomSearch(small_space, proxy_accuracy, seed=1).run(budget=5)
        table = result.render(top=3)
        assert "random search" in table
        assert result.best.name in table

    def test_caching_avoids_duplicate_evaluations(self, small_space):
        calls = {"count": 0}

        def counting_proxy(config):
            calls["count"] += 1
            return proxy_accuracy(config)

        search = EvolutionarySearch(small_space, counting_proxy, population_size=4, seed=5)
        result = search.run(generations=3)
        assert calls["count"] <= result.num_evaluations
        assert calls["count"] <= small_space.size

    def test_empty_result_best_raises(self):
        from repro.search.strategies import SearchResult

        with pytest.raises(RuntimeError):
            SearchResult(strategy="empty").best
