"""Tests of the quantisation primitives and observers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import (
    MinMaxObserver,
    MovingAverageObserver,
    QuantizationSpec,
    QuantizedTensor,
    compute_scale_zero_point,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)


class TestQuantizationSpec:
    def test_int8_ranges(self):
        signed = QuantizationSpec(bits=8, signed=True)
        assert (signed.qmin, signed.qmax) == (-128, 127)
        unsigned = QuantizationSpec(bits=8, signed=False)
        assert (unsigned.qmin, unsigned.qmax) == (0, 255)
        assert signed.num_levels == 256

    def test_other_bit_widths(self):
        assert QuantizationSpec(bits=4).qmax == 7
        assert QuantizationSpec(bits=16).qmax == 32767

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=1)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_half_scale(self, rng):
        values = rng.standard_normal(1000) * 3
        spec = QuantizationSpec(bits=8, symmetric=True)
        scale, zero_point = compute_scale_zero_point(values.min(), values.max(), spec)
        reconstruction = dequantize(quantize(values, scale, zero_point, spec), scale, zero_point, spec)
        assert np.max(np.abs(values - reconstruction)) <= float(scale) * 0.5 + 1e-12

    def test_symmetric_zero_point_is_zero(self):
        scale, zero_point = compute_scale_zero_point(-2.0, 3.0, QuantizationSpec(symmetric=True))
        assert zero_point == 0.0

    def test_affine_covers_asymmetric_range(self):
        spec = QuantizationSpec(bits=8, symmetric=False, signed=False)
        values = np.linspace(0.0, 10.0, 100)
        scale, zero_point = compute_scale_zero_point(values.min(), values.max(), spec)
        q = quantize(values, scale, zero_point, spec)
        assert q.min() >= 0 and q.max() <= 255
        reconstruction = dequantize(q, scale, zero_point, spec)
        assert np.max(np.abs(values - reconstruction)) <= float(scale)

    def test_zero_range_does_not_divide_by_zero(self):
        scale, zero_point = compute_scale_zero_point(0.0, 0.0, QuantizationSpec())
        assert np.all(np.isfinite(scale))

    def test_int8_dtype(self, rng):
        spec = QuantizationSpec(bits=8)
        values = rng.standard_normal(10)
        scale, zp = compute_scale_zero_point(values.min(), values.max(), spec)
        assert quantize(values, scale, zp, spec).dtype == np.int8

    def test_per_channel_quantization(self, rng):
        spec = QuantizationSpec(bits=8, channel_axis=0)
        values = rng.standard_normal((4, 100))
        values[0] *= 100.0  # one channel with a much larger range
        minimum, maximum = values.min(axis=1), values.max(axis=1)
        scale, zp = compute_scale_zero_point(minimum, maximum, spec)
        assert scale.shape == (4,)
        reconstruction = dequantize(quantize(values, scale, zp, spec), scale, zp, spec)
        # Per-channel scaling keeps the small channels precise.
        assert np.max(np.abs(values[1:] - reconstruction[1:])) < 0.05

    def test_fake_quantize_idempotent(self, rng):
        spec = QuantizationSpec()
        values = rng.standard_normal(50)
        scale, zp = compute_scale_zero_point(values.min(), values.max(), spec)
        once = fake_quantize(values, scale, zp, spec)
        twice = fake_quantize(once, scale, zp, spec)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(arrays(np.float64, (64,), elements=st.floats(-100, 100)))
    @settings(max_examples=40, deadline=None)
    def test_quantization_error_property(self, values):
        """int8 RMS quantisation error is below 1% of the value range."""
        error = quantization_error(values, QuantizationSpec(bits=8, symmetric=True))
        value_range = max(np.abs(values).max(), 1e-8)
        assert error <= 0.01 * value_range + 1e-9

    def test_more_bits_less_error(self, rng):
        values = rng.standard_normal(500)
        errors = [quantization_error(values, QuantizationSpec(bits=b)) for b in (4, 8, 16)]
        assert errors[0] > errors[1] > errors[2]

    def test_quantized_tensor_container(self, rng):
        spec = QuantizationSpec()
        values = rng.standard_normal(100)
        scale, zp = compute_scale_zero_point(values.min(), values.max(), spec)
        qt = QuantizedTensor(quantize(values, scale, zp, spec), np.asarray(scale), np.asarray(zp), spec)
        assert qt.nbytes == 100
        np.testing.assert_allclose(qt.dequantize(), values, atol=float(scale))


class TestObservers:
    def test_minmax_tracks_extremes(self, rng):
        observer = MinMaxObserver()
        observer.observe(np.array([1.0, 2.0]))
        observer.observe(np.array([-5.0, 0.5]))
        assert observer.minimum == -5.0 and observer.maximum == 2.0

    def test_uninitialized_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().quantization_parameters()

    def test_moving_average_smooths(self):
        observer = MovingAverageObserver(momentum=0.5)
        observer.observe(np.array([0.0, 10.0]))
        observer.observe(np.array([0.0, 20.0]))
        assert observer.maximum == pytest.approx(15.0)

    def test_moving_average_invalid_momentum(self):
        with pytest.raises(ValueError):
            MovingAverageObserver(momentum=1.0)

    def test_observer_parameters_usable(self, rng):
        observer = MinMaxObserver(QuantizationSpec(bits=8, symmetric=False))
        values = rng.standard_normal((10, 10))
        observer.observe(values)
        scale, zp = observer.quantization_parameters()
        reconstruction = fake_quantize(values, scale, zp, observer.spec)
        assert np.max(np.abs(values - reconstruction)) < 0.1
