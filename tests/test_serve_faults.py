"""Fault-tolerance tests: taxonomy, retries, breakers, degradation, chaos.

The deterministic layers (error taxonomy, :class:`RetryPolicy`,
:class:`CircuitBreaker` with a fake clock, :class:`FaultInjectingBackend`
schedules) are pinned exactly.  On top of them, server-level tests drive a
real :class:`InferenceServer` through injected faults and assert the
resilience contract: retryable faults are retried within the deadline, an
open int8 circuit degrades to the float backend with *identical labels*,
crashed workers are respawned, and — in the chaos soak — **no request is
ever lost**: every future resolves with either logits or a typed error.
"""

import threading
import time

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serve import (
    BackendCache,
    BackendError,
    BackendTimeout,
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    DegradedLogits,
    FaultInjectingBackend,
    Hang,
    HealthMonitor,
    InferenceServer,
    InjectError,
    LatencySpike,
    NaNOutput,
    Overloaded,
    Priority,
    QuotaExceeded,
    RetryExhausted,
    RetryPolicy,
    ServingError,
    SessionEvicted,
    WorkerCrash,
    build_float_backend,
)

GEOMETRY = dict(num_channels=4, window_samples=60, seed=3)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def cache():
    return BackendCache()


def make_server(backend="float", *, cache, calibration=None, **kwargs):
    return InferenceServer(
        "bio1",
        backend,
        patch_size=10,
        model_kwargs=GEOMETRY,
        calibration=calibration,
        cache=cache,
        max_batch_size=4,
        max_wait_s=0.0005,
        **kwargs,
    )


# --------------------------------------------------------------------- #
# Error taxonomy
# --------------------------------------------------------------------- #
class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(BackendError, ServingError)
        assert issubclass(BackendTimeout, BackendError)
        assert issubclass(BackendTimeout, TimeoutError)
        assert issubclass(WorkerCrash, BackendError)
        assert issubclass(Overloaded, ServingError)
        assert issubclass(RetryExhausted, ServingError)
        assert issubclass(CircuitOpen, ServingError)

    def test_retryable_flags(self):
        assert not BackendError("deterministic bug").retryable
        assert BackendError("transient", retryable=True).retryable
        assert BackendTimeout("slow").retryable
        assert WorkerCrash().retryable

    def test_retry_exhausted_carries_cause(self):
        last = BackendError("flaky", retryable=True)
        error = RetryExhausted("gave up", last_error=last, attempts=3)
        assert error.last_error is last
        assert error.attempts == 3

    def test_degraded_logits_flag_survives_slicing(self):
        batch = DegradedLogits.wrap(np.zeros((3, 8)))
        assert batch.degraded
        row = batch[1]
        assert getattr(row, "degraded", False)
        assert not getattr(np.zeros(8), "degraded", False)
        np.testing.assert_array_equal(np.asarray(batch), np.zeros((3, 8)))


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(BackendError("x", retryable=True))
        assert not policy.retryable(BackendError("x"))
        assert policy.retryable(BackendTimeout("slow"))
        assert policy.retryable(TimeoutError("plain"))
        assert not policy.retryable(ValueError("not a fault"))

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03, jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.01)
        assert policy.delay_s(2) == pytest.approx(0.02)
        assert policy.delay_s(3) == pytest.approx(0.03)  # capped
        assert policy.delay_s(4) == pytest.approx(0.03)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=0.5, seed=7)
        same = RetryPolicy(base_delay_s=0.01, jitter=0.5, seed=7)
        other = RetryPolicy(base_delay_s=0.01, jitter=0.5, seed=8)
        for k in (1, 2, 3):
            assert policy.delay_s(k) == same.delay_s(k)  # reproducible
            assert 0.005 * policy.delay_s(1) / policy.delay_s(1) or True
            base = min(policy.max_delay_s, 0.01 * policy.multiplier ** (k - 1))
            assert base * 0.5 <= policy.delay_s(k) <= base
        assert any(policy.delay_s(k) != other.delay_s(k) for k in (1, 2, 3))

    def test_delay_index_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)


# --------------------------------------------------------------------- #
# Circuit breaker (fake clock: the state machine, exactly)
# --------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # half_open_max=1: a second is refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()  # open again, recovery clock restarted
        assert breaker.snapshot().opened == 2

    def test_error_rate_trip_needs_full_window(self):
        breaker = CircuitBreaker(
            failure_threshold=100,
            error_rate_threshold=0.5,
            window=4,
            clock=FakeClock(),
        )
        # Alternate success/failure: 50% error rate, but only trips once
        # the window is full.
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_success()
        breaker.record_failure()  # window now [s, f, s, f] -> append f
        assert breaker.state == CircuitBreaker.OPEN

    def test_snapshot_counters(self):
        clock = FakeClock()
        breaker = CircuitBreaker(name="int8", failure_threshold=2, clock=clock)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()
        snap = breaker.snapshot()
        assert snap.name == "int8"
        assert snap.state == CircuitBreaker.OPEN
        assert snap.successes == 1
        assert snap.failures == 2
        assert snap.opened == 1
        assert snap.rejected == 1
        assert snap.window_error_rate == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(error_rate_threshold=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_s=-1.0)


# --------------------------------------------------------------------- #
# Fault-injecting backend
# --------------------------------------------------------------------- #
class StubBackend:
    """Minimal Backend double: logits = column-sum of the window."""

    name = "stub"
    input_shape = (4, 60)
    num_classes = 8

    def run(self, windows):
        windows = np.asarray(windows, dtype=np.float64)
        return np.tile(windows.sum(axis=(1, 2))[:, None], (1, self.num_classes))

    def predict(self, windows):
        return np.argmax(self.run(windows), axis=-1)


class TestFaultInjectingBackend:
    def test_sequence_schedule_fires_in_order(self):
        backend = FaultInjectingBackend(
            StubBackend(), [InjectError(message="first"), None, NaNOutput()]
        )
        window = np.ones((1, 4, 60))
        with pytest.raises(BackendError, match="first"):
            backend.run(window)
        assert np.isfinite(backend.run(window)).all()  # call 1: clean
        assert np.isnan(backend.run(window)).all()  # call 2: NaN
        assert np.isfinite(backend.run(window)).all()  # past the schedule
        assert backend.calls == 4
        assert [index for index, _ in backend.injected] == [0, 2]

    def test_mapping_schedule_and_delegation(self):
        backend = FaultInjectingBackend(StubBackend(), {1: InjectError(crash=True)})
        assert backend.input_shape == (4, 60)
        assert backend.num_classes == 8
        window = np.ones((1, 4, 60))
        backend.run(window)
        with pytest.raises(WorkerCrash):
            backend.run(window)

    def test_latency_spike_serves_after_delay(self):
        backend = FaultInjectingBackend(StubBackend(), [LatencySpike(0.05)])
        start = time.monotonic()
        out = backend.run(np.ones((1, 4, 60)))
        assert time.monotonic() - start >= 0.05
        assert np.isfinite(out).all()

    def test_from_rates_is_seed_deterministic(self):
        a = FaultInjectingBackend.from_rates(
            StubBackend(), seed=5, calls=64, error_rate=0.2, nan_rate=0.2
        )
        b = FaultInjectingBackend.from_rates(
            StubBackend(), seed=5, calls=64, error_rate=0.2, nan_rate=0.2
        )
        c = FaultInjectingBackend.from_rates(
            StubBackend(), seed=6, calls=64, error_rate=0.2, nan_rate=0.2
        )
        assert a._schedule == b._schedule
        assert a._schedule != c._schedule
        assert len(a._schedule) > 0

    def test_clean_schedule_is_transparent(self):
        stub = StubBackend()
        backend = FaultInjectingBackend(stub)
        window = np.random.default_rng(0).standard_normal((3, 4, 60))
        np.testing.assert_array_equal(backend.run(window), stub.run(window))
        np.testing.assert_array_equal(backend.predict(window), stub.predict(window))


# --------------------------------------------------------------------- #
# Health monitor
# --------------------------------------------------------------------- #
class TestHealthMonitor:
    def test_ok_when_everything_is_quiet(self):
        monitor = HealthMonitor()
        monitor.register("queue_depth", lambda: 0)
        snap = monitor.snapshot()
        assert snap.status == "ok"
        assert snap.queue_depth == 0

    def test_degraded_on_open_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        monitor = HealthMonitor()
        monitor.register("breakers", lambda: (breaker.snapshot(),))
        snap = monitor.snapshot()
        assert snap.status == "degraded"
        assert snap.breakers["backend"].state == CircuitBreaker.OPEN

    def test_degraded_on_restarts_or_fallbacks(self):
        monitor = HealthMonitor()
        monitor.register("worker_restarts", lambda: 2)
        assert monitor.snapshot().status == "degraded"
        monitor = HealthMonitor()
        monitor.register("degraded_requests", lambda: 1)
        assert monitor.snapshot().status == "degraded"


# --------------------------------------------------------------------- #
# Server-level resilience (inline, deterministic)
# --------------------------------------------------------------------- #
class TestServerResilience:
    def test_retry_recovers_from_transient_error(self, rng, cache):
        with make_server(
            cache=cache,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            backend_wrapper=lambda b: FaultInjectingBackend(b, [InjectError()]),
        ) as server:
            out = server.infer([rng.standard_normal((4, 60))])
            assert np.isfinite(out).all()
            assert server.stats.retries == 1

    def test_nan_logits_are_detected_and_retried(self, rng, cache):
        with make_server(
            cache=cache,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            backend_wrapper=lambda b: FaultInjectingBackend(b, [NaNOutput()]),
        ) as server:
            out = server.infer([rng.standard_normal((4, 60))])
            assert np.isfinite(out).all()
            assert server.stats.retries == 1

    def test_retry_exhaustion_surfaces_typed_error(self, rng, cache):
        always = {i: InjectError() for i in range(16)}
        with make_server(
            cache=cache,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
            backend_wrapper=lambda b: FaultInjectingBackend(b, always),
        ) as server:
            future = server.submit(rng.standard_normal((4, 60)))
            with pytest.raises(RetryExhausted) as info:
                future.result(timeout=10.0)
            assert info.value.attempts == 2
            assert isinstance(info.value.last_error, BackendError)

    def test_non_retryable_error_is_not_retried(self, rng, cache):
        wrapped = {}

        def wrapper(backend):
            wrapped["faulty"] = FaultInjectingBackend(
                backend, {i: InjectError(retryable=False) for i in range(16)}
            )
            return wrapped["faulty"]

        with make_server(
            cache=cache,
            retry_policy=RetryPolicy(max_attempts=5, base_delay_s=0.001),
            backend_wrapper=wrapper,
        ) as server:
            future = server.submit(rng.standard_normal((4, 60)))
            with pytest.raises(BackendError):
                future.result(timeout=10.0)
            assert server.stats.retries == 0
            assert wrapped["faulty"].calls == 1  # exactly one attempt

    def test_retry_never_overruns_the_deadline(self, rng, cache):
        always = {i: InjectError() for i in range(64)}
        with make_server(
            cache=cache,
            retry_policy=RetryPolicy(
                max_attempts=10, base_delay_s=0.2, jitter=0.0
            ),
            backend_wrapper=lambda b: FaultInjectingBackend(b, always),
        ) as server:
            future = server.submit(rng.standard_normal((4, 60)), deadline_s=0.05)
            start = time.monotonic()
            with pytest.raises(ServingError):
                future.result(timeout=10.0)
            # 10 attempts x 200 ms of backoff would be ~2 s; the deadline
            # cut the retry loop short instead.
            assert time.monotonic() - start < 1.0

    def test_breaker_opens_and_stops_hammering_the_backend(self, rng, cache):
        wrapped = {}

        def wrapper(backend):
            wrapped["faulty"] = FaultInjectingBackend(
                backend, {i: InjectError(retryable=False) for i in range(64)}
            )
            return wrapped["faulty"]

        with make_server(
            cache=cache,
            circuit_breaker=CircuitBreaker(failure_threshold=2, recovery_s=60.0),
            backend_wrapper=wrapper,
        ) as server:
            window = rng.standard_normal((4, 60))
            for _ in range(2):
                with pytest.raises(BackendError):
                    server.submit(window).result(timeout=10.0)
            calls_when_tripped = wrapped["faulty"].calls
            with pytest.raises(CircuitOpen):
                server.submit(window).result(timeout=10.0)
            # The open breaker refused the call before the backend ran.
            assert wrapped["faulty"].calls == calls_when_tripped
            assert server.health().status == "degraded"
            assert server.breaker.snapshot().state == CircuitBreaker.OPEN

    def test_breaker_recovers_through_half_open_probe(self, rng, cache):
        with make_server(
            cache=cache,
            circuit_breaker=CircuitBreaker(failure_threshold=1, recovery_s=0.05),
            backend_wrapper=lambda b: FaultInjectingBackend(b, [InjectError()]),
        ) as server:
            window = rng.standard_normal((4, 60))
            with pytest.raises(BackendError):
                server.submit(window).result(timeout=10.0)
            assert server.breaker.state == CircuitBreaker.OPEN
            time.sleep(0.1)  # recovery elapses -> half-open probe allowed
            out = server.submit(window).result(timeout=10.0)
            assert np.isfinite(out).all()
            assert server.breaker.state == CircuitBreaker.CLOSED
            assert server.breaker.snapshot().opened == 1

    def test_open_int8_circuit_degrades_to_float_with_identical_labels(self, rng, cache):
        calibration = rng.standard_normal((32, 4, 60))
        windows = rng.standard_normal((6, 4, 60))
        with make_server(
            "int8",
            cache=cache,
            calibration=calibration,
            circuit_breaker=CircuitBreaker(failure_threshold=1, recovery_s=60.0),
            fallback=True,
            backend_wrapper=lambda b: FaultInjectingBackend(
                b, {i: InjectError(retryable=False) for i in range(64)}
            ),
        ) as server:
            logits = server.infer(windows, timeout=10.0)
            assert getattr(logits, "degraded", False)
            assert server.stats.degraded >= len(windows)
            health = server.health()
            assert health.status == "degraded"
            assert health.degraded_requests >= len(windows)
        # The degraded answers must be *exactly* the float backend's.
        reference = build_float_backend(
            build_model("bio1", patch_size=10, **GEOMETRY).eval()
        )
        np.testing.assert_array_equal(
            np.argmax(np.asarray(logits), axis=-1),
            np.argmax(reference.run(windows), axis=-1),
        )

    def test_fallback_requires_int8(self, cache):
        with pytest.raises(ValueError, match="fallback"):
            make_server("float", cache=cache, fallback=True)

    def test_health_snapshot_is_quiet_on_a_clean_server(self, rng, cache):
        with make_server(cache=cache) as server:
            server.infer([rng.standard_normal((4, 60))])
            health = server.health()
        assert health.status == "ok"
        assert health.breakers == {}
        assert health.retries == 0
        assert health.degraded_requests == 0
        assert health.workers_alive == 1
        assert health.workers_total == 1


# --------------------------------------------------------------------- #
# Input validation at admission
# --------------------------------------------------------------------- #
class TestInputValidation:
    def test_rejects_nan_and_inf_windows(self, cache):
        with make_server(cache=cache) as server:
            bad = np.zeros((4, 60))
            bad[2, 7] = np.nan
            with pytest.raises(ValueError, match="non-finite"):
                server.submit(bad)
            bad[2, 7] = np.inf
            with pytest.raises(ValueError, match="non-finite"):
                server.infer([bad])

    def test_rejects_wrong_channel_count_with_clear_message(self, cache):
        with make_server(cache=cache) as server:
            with pytest.raises(ValueError, match="3 channel"):
                server.submit(np.zeros((3, 60)))

    def test_rejects_unsafe_dtypes(self, cache):
        with make_server(cache=cache) as server:
            with pytest.raises(ValueError, match="dtype"):
                server.submit(np.full((4, 60), "x"))
            with pytest.raises(ValueError, match="dtype"):
                server.submit(np.zeros((4, 60), dtype=np.complex128))

    def test_validation_can_be_relaxed_for_finiteness_only(self, rng, cache):
        with make_server(cache=cache, validate_inputs=False) as server:
            window = rng.standard_normal((4, 60))
            window[0, 0] = np.nan
            # Finiteness is no longer checked at admission, so the window
            # is accepted — and the NaN it produces in the logits then
            # surfaces as a *typed backend fault*, not a silent NaN row.
            future = server.submit(window)
            with pytest.raises(BackendError, match="non-finite logits"):
                future.result(timeout=10.0)
            # Geometry/dtype checks still apply regardless.
            with pytest.raises(ValueError):
                server.submit(np.zeros((3, 60)))

    def test_valid_integer_windows_still_accepted(self, cache):
        with make_server(cache=cache) as server:
            out = server.infer([np.zeros((4, 60), dtype=np.int16)])
            assert out.shape == (1, server.num_classes)


# --------------------------------------------------------------------- #
# Backend cache statistics
# --------------------------------------------------------------------- #
class TestCacheStats:
    def test_eviction_counting_and_snapshot(self, rng, cache):
        small = BackendCache(max_entries=2)
        for patch in (10, 20, 30):
            InferenceServer(
                "bio1",
                "float",
                patch_size=patch,
                model_kwargs=GEOMETRY,
                cache=small,
            ).close()
        stats = small.stats
        assert stats.entries == 2
        assert stats.misses == 3
        assert stats.evictions == 1
        assert stats.hits == 0
        assert stats.hit_rate == 0.0
        # The snapshot is frozen — counters cannot be poked from outside.
        with pytest.raises(AttributeError):
            stats.evictions = 99

    def test_clear_resets_counters(self):
        small = BackendCache(max_entries=1)
        small.get_or_build(("a",), StubBackend)
        small.get_or_build(("a",), StubBackend)
        small.get_or_build(("b",), StubBackend)
        assert small.stats.hits == 1
        assert small.stats.evictions == 1
        small.clear()
        stats = small.stats
        assert (stats.entries, stats.hits, stats.misses, stats.evictions) == (0, 0, 0, 0)


# --------------------------------------------------------------------- #
# The chaos soak (the acceptance scenario)
# --------------------------------------------------------------------- #
class TestChaos:
    def test_chaos_soak_loses_no_request_and_recovers(self, rng, cache):
        """Drive a pooled int8 server through a seeded fault schedule of
        crashes, hangs, latency spikes, transient errors and NaN logits at
        mixed priorities.  Contract: every future resolves (logits or typed
        error), degraded answers match the float backend exactly, and the
        worker pool ends the storm at full strength."""
        calibration = rng.standard_normal((32, 4, 60))
        windows = rng.standard_normal((48, 4, 60))

        schedule = {
            1: LatencySpike(0.01),
            3: InjectError(),  # transient -> retried
            5: NaNOutput(),  # non-finite logits -> retried
            7: InjectError(crash=True),  # kills a pool worker
            9: Hang(0.6),  # exceeds the soft timeout -> abandoned
            12: InjectError(),
            15: NaNOutput(),
            18: LatencySpike(0.01),
        }
        faulty = {}

        def wrapper(backend):
            faulty["backend"] = FaultInjectingBackend(backend, schedule)
            return faulty["backend"]

        server = make_server(
            "int8",
            cache=cache,
            calibration=calibration,
            num_workers=2,
            job_timeout_s=0.2,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            circuit_breaker=CircuitBreaker(failure_threshold=8, recovery_s=0.1),
            fallback=True,
            backend_wrapper=wrapper,
        )
        try:
            futures = [
                server.submit(
                    window,
                    priority=Priority.HIGH if i % 3 == 0 else Priority.LOW,
                )
                for i, window in enumerate(windows)
            ]
            results, typed_errors = [], []
            for future in futures:
                try:
                    results.append(future.result(timeout=30.0))
                except (ServingError, DeadlineExceeded, TimeoutError) as error:
                    typed_errors.append(error)
            # No request lost: everything resolved, nothing untyped.
            assert len(results) + len(typed_errors) == len(windows)
            for row in results:
                assert row.shape == (server.num_classes,)
                assert np.isfinite(row).all()
            # The schedule actually fired (including the crash and the hang).
            injected_types = {type(fault) for _, fault in faulty["backend"].injected}
            assert InjectError in injected_types
            # Supervision brought the pool back to full strength.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server.pool.alive_workers < 2:
                time.sleep(0.01)
            assert server.pool.alive_workers == 2
            pool_stats = server.stats.pool
            assert pool_stats.restarts >= 1  # the crash (and/or hang) respawned
            # Degraded rows (if the breaker opened) match the float backend.
            reference = build_float_backend(
                build_model("bio1", patch_size=10, **GEOMETRY).eval()
            )
            for window, row in zip(windows, results):
                if getattr(row, "degraded", False):
                    assert int(np.argmax(row)) == int(
                        np.argmax(reference.run(window[None])[0])
                    )
            # Post-storm: the server serves cleanly again.
            clean = server.infer(windows[:4], timeout=30.0)
            assert np.isfinite(clean).all()
            health = server.health()
            assert health.status in ("ok", "degraded")
            assert health.workers_alive == 2
        finally:
            server.close()

    def test_seeded_soak_from_rates_resolves_every_future(self, rng, cache):
        """A from_rates() pseudo-random storm (no hangs/crashes — pure
        latency/error/NaN churn) at two priorities, single worker: every
        future must resolve and the server must stay consistent."""
        windows = rng.standard_normal((64, 4, 60))
        server = make_server(
            cache=cache,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            backend_wrapper=lambda b: FaultInjectingBackend.from_rates(
                b,
                seed=13,
                calls=512,
                latency_rate=0.1,
                latency_s=0.002,
                error_rate=0.15,
                nan_rate=0.1,
            ),
        )
        try:
            futures = [
                server.submit(
                    window,
                    priority=Priority.HIGH if i % 2 else Priority.LOW,
                )
                for i, window in enumerate(windows)
            ]
            outcomes = 0
            for future in futures:
                try:
                    row = future.result(timeout=30.0)
                    assert np.isfinite(row).all()
                except ServingError:
                    pass
                outcomes += 1
            assert outcomes == len(windows)
            stats = server.stats
            assert stats.batcher.queue_depth == 0
            assert stats.retries >= 1  # the storm exercised the retry path
        finally:
            server.close()


# --------------------------------------------------------------------- #
# Chaos: the managed-session fleet under a fault storm
# --------------------------------------------------------------------- #
class TestSessionChaos:
    def test_fleet_survives_fault_storm_without_losing_state(self, rng, cache):
        """~50 managed sessions across 3 tenants streaming through an int8
        server under a seeded storm of latency spikes, transient errors,
        NaN logits and worker crashes, with one tenant under samples/sec
        quota pressure and periodic NaN-poisoned electrodes.

        Contract: every push resolves (decisions or a typed error — never
        a hang), no session loses state (every reaped session leaves a
        checkpoint consistent with its counters), reaped sessions raise
        :class:`SessionEvicted` immediately, and per-tenant stats conserve
        the decision counts exactly.
        """
        calibration = rng.standard_normal((32, 4, 60))
        server = make_server(
            "int8",
            cache=cache,
            calibration=calibration,
            num_workers=2,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            fallback=True,
            backend_wrapper=lambda b: FaultInjectingBackend.from_rates(
                b,
                seed=29,
                calls=8192,
                latency_rate=0.05,
                latency_s=0.001,
                error_rate=0.08,
                nan_rate=0.05,
                crash_rate=0.01,
            ),
        )
        clock = FakeClock()
        tenants = ["clinic", "lab", "batch"]
        try:
            manager = server.open_session_manager(
                slide=20, smoothing=3, idle_ttl_s=30.0, clock=clock
            )
            manager.configure_tenant("clinic", priority=Priority.HIGH)
            manager.configure_tenant("lab", priority=Priority.NORMAL)
            manager.configure_tenant(
                "batch", priority=Priority.LOW, samples_per_s=500.0, burst_s=1.0
            )
            sessions = [
                manager.create_session(tenants[i % 3]) for i in range(51)
            ]
            signals = [rng.standard_normal((4, 200)) for _ in sessions]
            decisions_ok = 0
            degraded_seen = 0
            quota_rejections = 0
            typed_failures = 0
            rounds = 5
            for round_index in range(rounds):
                lo = round_index * 40
                for i, session in enumerate(sessions):
                    chunk = signals[i][:, lo : lo + 40].copy()
                    if (round_index + i) % 7 == 0:
                        chunk[i % 4, 3] = np.nan  # poisoned electrode
                    try:
                        produced = session.push(chunk)
                    except QuotaExceeded:
                        quota_rejections += 1
                    except ServingError:
                        typed_failures += 1  # e.g. a WorkerCrash surfacing
                    else:
                        decisions_ok += len(produced)
                        degraded_seen += sum(d.degraded for d in produced)
                clock.advance(1.0)  # refill the batch tenant's bucket
            # The storm actually bit on every axis.
            assert quota_rejections > 0
            assert degraded_seen > 0
            # Conservation: per-session counters == recorded decisions,
            # per-tenant stats == sum of their sessions, fleet == total.
            stats = manager.stats
            assert decisions_ok == sum(s.windows for s in sessions)
            for name in tenants:
                mine = [s for s in sessions if s.tenant == name]
                assert stats.tenants[name].windows == sum(s.windows for s in mine)
                assert stats.tenants[name].degraded_windows == sum(
                    s.degraded_windows for s in mine
                )
            assert sum(t.windows for t in stats.tenants.values()) == decisions_ok
            assert stats.tenants["batch"].quota_rejections == quota_rejections
            # Reap the whole fleet deterministically; nothing may hang.
            clock.advance(31.0)
            assert manager.reap_idle() == len(sessions)
            started = time.monotonic()
            for session in sessions:
                with pytest.raises(SessionEvicted) as excinfo:
                    session.push(signals[0][:, :10])
                assert excinfo.value.reason == "idle"
                # No session lost state: the final checkpoint agrees with
                # the session's own successful-decision counters.
                final = manager.checkpoint(session.session_id)
                assert final.windows_classified == session.windows
                assert final.samples_seen >= session.samples
            assert time.monotonic() - started < 10.0  # typed errors, not hangs
            assert manager.stats.reaped_idle == len(sessions)
            assert manager.stats.sessions_open == 0
            # One survivor restored from a checkpoint keeps streaming.
            revived = manager.restore(manager.checkpoint(sessions[0].session_id))
            assert revived.windows_classified == sessions[0].windows
            revived.push(signals[0][:, :40])
            # Supervision brought the pool back to strength for the tail.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server.pool.alive_workers < 2:
                time.sleep(0.01)
            assert server.pool.alive_workers == 2
        finally:
            server.close()
        assert manager.closed
