"""Tests for the deployment graph IR and the model tracers."""

import numpy as np
import pytest

from repro.deploy import ComputeGraph, GraphNode, TensorSpec, trace_bioformer, trace_model, trace_temponet
from repro.hw.profiler import profile_bioformer, profile_temponet
from repro.models import Bioformer, BioformerConfig, TEMPONetConfig, bioformer_bio1, bioformer_bio2, temponet


def small_bioformer(**overrides):
    config = BioformerConfig(
        num_channels=4, window_samples=60, patch_size=10, depth=1, num_heads=2, seed=3, **overrides
    )
    return Bioformer(config)


def small_temponet():
    return temponet(num_channels=4, window_samples=80, seed=3)


# --------------------------------------------------------------------- #
# TensorSpec / GraphNode / ComputeGraph primitives
# --------------------------------------------------------------------- #
class TestGraphPrimitives:
    def test_tensor_spec_size(self):
        spec = TensorSpec("x", (3, 5))
        assert spec.num_elements == 15
        assert spec.nbytes(1) == 15
        assert spec.nbytes(4) == 60

    def test_scalar_tensor_spec(self):
        spec = TensorSpec("scalar", ())
        assert spec.num_elements == 1

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            GraphNode("bad", "not_an_op", ["x"], TensorSpec("y", (1,)))

    def test_node_without_inputs_rejected(self):
        with pytest.raises(ValueError, match="no inputs"):
            GraphNode("bad", "relu", [], TensorSpec("y", (1,)))

    def test_graph_rejects_undefined_input(self):
        node = GraphNode("n", "relu", ["missing"], TensorSpec("y", (1,)))
        with pytest.raises(ValueError, match="undefined tensor"):
            ComputeGraph("g", TensorSpec("input", (1,)), [node])

    def test_graph_rejects_duplicate_tensor(self):
        first = GraphNode("a", "relu", ["input"], TensorSpec("t", (1,)))
        second = GraphNode("b", "relu", ["t"], TensorSpec("t", (1,)))
        with pytest.raises(ValueError, match="defined twice"):
            ComputeGraph("g", TensorSpec("input", (1,)), [first, second])

    def test_graph_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one node"):
            ComputeGraph("g", TensorSpec("input", (1,)), [])

    def test_linear_node_macs(self):
        node = GraphNode(
            "fc",
            "linear",
            ["input"],
            TensorSpec("out", (6, 8)),
            weights={"weight": np.zeros((8, 4)), "bias": np.zeros(8)},
        )
        assert node.macs == 6 * 4 * 8
        assert node.weight_elements == 8 * 4 + 8

    def test_matmul_node_macs(self):
        node = GraphNode(
            "mm",
            "matmul",
            ["a", "b"],
            TensorSpec("out", (2, 7, 7)),
            attrs={"inner_dim": 16},
        )
        # Validation of graph-level SSA is skipped here; macs is node-local.
        assert node.macs == 2 * 7 * 7 * 16

    def test_shape_only_nodes_have_no_cost(self):
        node = GraphNode("t", "transpose", ["input"], TensorSpec("y", (4, 2)), attrs={"axes": (1, 0)})
        assert node.is_shape_only
        assert node.macs == 0
        assert node.elementwise_ops == 0


# --------------------------------------------------------------------- #
# Bioformer tracer
# --------------------------------------------------------------------- #
class TestBioformerTrace:
    def test_graph_shapes(self):
        model = small_bioformer()
        graph = trace_bioformer(model)
        assert graph.graph_input.shape == (4, 60)
        assert graph.output.shape == (8,)
        assert graph.output.name == "logits"

    def test_sequence_length_includes_class_token(self):
        model = small_bioformer()
        graph = trace_bioformer(model)
        embedded = graph.tensor_specs()["embedded"]
        assert embedded.shape == (model.config.sequence_length, model.config.embed_dim)

    def test_depth_reflected_in_node_count(self):
        shallow = trace_bioformer(bioformer_bio1(patch_size=10))
        deep = trace_bioformer(bioformer_bio2(patch_size=10))
        per_block_nodes = 18
        assert len(deep) - len(shallow) == per_block_nodes

    def test_macs_match_analytical_profiler(self):
        config = BioformerConfig(patch_size=10, depth=1, num_heads=8)
        model = Bioformer(config)
        graph = trace_bioformer(model)
        profile = profile_bioformer(config)
        assert graph.total_macs == pytest.approx(profile.total_macs, rel=0.02)

    def test_weight_elements_match_model_parameters(self):
        model = small_bioformer()
        graph = trace_bioformer(model)
        assert graph.total_weight_elements == model.num_parameters()

    def test_mean_pooling_variant(self):
        model = small_bioformer(pooling="mean")
        graph = trace_bioformer(model)
        ops = [node.op for node in graph]
        assert "mean_tokens" in ops
        assert "append_token" not in ops

    def test_no_positional_embedding_variant(self):
        model = small_bioformer(use_positional_embedding=False)
        graph = trace_bioformer(model)
        assert "add_positional" not in [node.op for node in graph]

    def test_summary_mentions_every_node(self):
        graph = trace_bioformer(small_bioformer())
        summary = graph.summary()
        for node in graph:
            assert node.name in summary


# --------------------------------------------------------------------- #
# TEMPONet tracer
# --------------------------------------------------------------------- #
class TestTemponetTrace:
    def test_graph_shapes(self):
        model = small_temponet()
        graph = trace_temponet(model)
        assert graph.graph_input.shape == (4, 80)
        assert graph.output.name == "logits"
        assert graph.output.shape == (8,)

    def test_batchnorm_folded_to_channel_affine(self):
        graph = trace_temponet(small_temponet())
        ops = [node.op for node in graph]
        assert "channel_affine" in ops
        assert ops.count("conv1d") == 9  # 3 blocks x (2 dilated + 1 strided)

    def test_flatten_feeds_classifier(self):
        model = small_temponet()
        graph = trace_temponet(model)
        flattened = graph.tensor_specs()["flattened"]
        assert flattened.shape == (model.flatten_features,)

    def test_macs_close_to_analytical_profiler(self):
        config = TEMPONetConfig()
        model = temponet()
        graph = trace_temponet(model)
        profile = profile_temponet(config)
        # The analytical profiler approximates padded-length convolutions;
        # the traced graph uses exact output lengths.
        assert graph.total_macs == pytest.approx(profile.total_macs, rel=0.15)

    def test_weight_elements_match_model_parameters(self):
        model = small_temponet()
        graph = trace_temponet(model)
        assert graph.total_weight_elements == model.num_parameters()


# --------------------------------------------------------------------- #
# Dispatch / utility
# --------------------------------------------------------------------- #
class TestTraceDispatch:
    def test_trace_model_dispatch(self):
        assert trace_model(small_bioformer()).name.startswith("Bioformer")
        assert trace_model(small_temponet()).name == "TEMPONet"

    def test_trace_model_rejects_unknown(self):
        with pytest.raises(TypeError):
            trace_model(object())

    def test_consumers_and_lookup(self):
        graph = trace_bioformer(small_bioformer())
        node = graph.node("patch_embedding")
        assert node.op == "conv1d"
        consumers = graph.consumers(node.output.name)
        assert consumers and all(node.output.name in consumer.inputs for consumer in consumers)
        with pytest.raises(KeyError):
            graph.node("does_not_exist")

    def test_largest_activation_is_attention_matrix_for_small_patches(self):
        model = Bioformer(BioformerConfig(patch_size=1, depth=1, num_heads=8, num_channels=4, window_samples=60))
        graph = trace_bioformer(model)
        largest = graph.largest_activation()
        # With patch 1 the sequence is long, so the attention scores dominate.
        assert "scores" in largest.name or "probs" in largest.name
