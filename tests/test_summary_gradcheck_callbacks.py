"""Tests for model summaries, gradient checking and training callbacks."""

import os

import numpy as np
import pytest

from repro import nn
from repro.models import Bioformer, BioformerConfig, bioformer_bio1, temponet
from repro.nn import (
    GradientCheckError,
    Tensor,
    check_gradient,
    check_module_gradients,
    numerical_gradient,
    summarize,
)
from repro.training import BestModelCheckpoint, EarlyStopping, ExponentialMovingAverage


def small_bioformer():
    return Bioformer(
        BioformerConfig(num_channels=4, window_samples=60, patch_size=10, depth=1, num_heads=2, seed=1)
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(33)


# --------------------------------------------------------------------- #
# Model summaries
# --------------------------------------------------------------------- #
class TestSummary:
    def test_total_matches_num_parameters(self):
        model = small_bioformer()
        summary = summarize(model)
        assert summary.total_params == model.num_parameters()

    def test_root_row_first_and_children_follow(self):
        summary = summarize(small_bioformer())
        assert summary.rows[0].depth == 0
        assert summary.rows[0].module_type == "Bioformer"
        assert any(row.module_type == "MultiHeadSelfAttention" for row in summary.rows)

    def test_subtree_totals_are_consistent(self):
        model = small_bioformer()
        summary = summarize(model)
        for row in summary.rows:
            assert row.total_params >= row.own_params

    def test_memory_estimates(self):
        summary = summarize(small_bioformer())
        assert summary.bytes(32) == 4 * summary.bytes(8)
        assert summary.int8_kilobytes == pytest.approx(summary.total_params / 1024.0)

    def test_paper_bio1_int8_size_close_to_94kb(self):
        summary = summarize(bioformer_bio1(patch_size=10))
        assert 80.0 <= summary.int8_kilobytes <= 105.0

    def test_temponet_larger_than_bioformer(self):
        assert summarize(temponet()).total_params > summarize(bioformer_bio1()).total_params

    def test_largest_modules_sorted(self):
        summary = summarize(small_bioformer())
        largest = summary.largest_modules(top=3)
        assert len(largest) == 3
        assert largest[0].total_params >= largest[1].total_params >= largest[2].total_params

    def test_render_contains_totals(self):
        summary = summarize(small_bioformer())
        text = summary.render(max_depth=2)
        assert "total parameters" in text
        assert "Bioformer" in text


# --------------------------------------------------------------------- #
# Gradient checking
# --------------------------------------------------------------------- #
class TestGradcheck:
    def test_numerical_gradient_of_quadratic(self, rng):
        value = rng.normal(size=(3, 4))
        gradient = numerical_gradient(lambda x: (x * x).sum(), value)
        np.testing.assert_allclose(gradient, 2 * value, atol=1e-5)

    def test_check_gradient_passes_for_correct_ops(self, rng):
        value = rng.normal(size=(4, 3))
        error = check_gradient(lambda x: (x.tanh() * x).sum(), value)
        assert error < 1e-5

    def test_check_gradient_scalar_requirement(self, rng):
        with pytest.raises(ValueError):
            check_gradient(lambda x: x * 2.0, rng.normal(size=(2, 2)))

    def test_check_gradient_detects_broken_gradient(self, rng):
        # A function whose "gradient" path deliberately drops a factor of 2:
        # detach the doubled term so autograd only sees half the contribution.
        def broken(x):
            return (x * x).sum() + Tensor(x.data * x.data).sum()

        with pytest.raises(GradientCheckError):
            check_gradient(broken, rng.normal(size=(3,)))

    def test_module_gradients_linear(self, rng):
        layer = nn.Linear(6, 3, rng=rng)
        results = check_module_gradients(layer, rng.normal(size=(5, 6)))
        assert set(results) == {"weight", "bias"}

    def test_module_gradients_small_bioformer_head(self, rng):
        model = small_bioformer()
        results = check_module_gradients(
            model,
            rng.normal(size=(2, 4, 60)),
            parameters=["head.weight", "head.bias", "class_token"],
            max_elements_per_parameter=4,
            rtol=1e-3,
            atol=1e-5,
        )
        assert len(results) == 3

    def test_module_gradients_unknown_parameter(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        with pytest.raises(KeyError):
            check_module_gradients(layer, rng.normal(size=(3, 4)), parameters=["nope"])


# --------------------------------------------------------------------- #
# Early stopping
# --------------------------------------------------------------------- #
class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        metrics = [0.5, 0.6, 0.59, 0.58, 0.57]
        stops = [stopper.update(metric) for metric in metrics]
        assert stops == [False, False, False, True, True]
        assert stopper.best_metric == 0.6

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2)
        for metric in (0.5, 0.49, 0.55, 0.54):
            stopped = stopper.update(metric)
        assert not stopped
        assert stopper.bad_updates == 1

    def test_min_mode(self):
        stopper = EarlyStopping(patience=1, mode="min")
        stopper.update(1.0)
        assert not stopper.update(0.5)
        assert stopper.update(0.6)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.05)
        stopper.update(0.5)
        assert stopper.update(0.52)  # not enough improvement

    def test_restore_best_state(self, rng):
        model = nn.Linear(3, 2, rng=rng)
        stopper = EarlyStopping(patience=1)
        stopper.update(0.9, model)
        best_weight = model.weight.data.copy()
        model.weight.data[...] = 0.0
        stopper.update(0.1, model)
        assert stopper.restore(model)
        np.testing.assert_allclose(model.weight.data, best_weight)

    def test_restore_without_state(self, rng):
        assert not EarlyStopping().restore(nn.Linear(2, 2, rng=rng))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(mode="median")
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-0.1)


# --------------------------------------------------------------------- #
# Checkpointing and EMA
# --------------------------------------------------------------------- #
class TestCheckpointAndEMA:
    def test_checkpoint_saves_only_on_improvement(self, rng, tmp_path):
        model = nn.Linear(4, 2, rng=rng)
        checkpoint = BestModelCheckpoint(str(tmp_path / "best.npz"))
        assert checkpoint.update(0.5, model)
        assert not checkpoint.update(0.4, model)
        assert checkpoint.update(0.7, model)
        assert os.path.exists(str(tmp_path / "best.npz"))

    def test_checkpoint_round_trip(self, rng, tmp_path):
        model = nn.Linear(4, 2, rng=rng)
        checkpoint = BestModelCheckpoint(str(tmp_path / "best.npz"))
        checkpoint.update(0.9, model)
        saved_weight = model.weight.data.copy()
        model.weight.data[...] = -1.0
        checkpoint.load_best(model)
        np.testing.assert_allclose(model.weight.data, saved_weight)

    def test_checkpoint_load_before_save(self, rng, tmp_path):
        with pytest.raises(FileNotFoundError):
            BestModelCheckpoint(str(tmp_path / "best.npz")).load_best(nn.Linear(2, 2, rng=rng))

    def test_checkpoint_mode_validation(self, tmp_path):
        with pytest.raises(ValueError):
            BestModelCheckpoint(str(tmp_path / "x.npz"), mode="other")

    def test_ema_converges_to_constant_weights(self, rng):
        model = nn.Linear(3, 2, rng=rng)
        ema = ExponentialMovingAverage(model, decay=0.5)
        target = model.weight.data.copy()
        for _ in range(30):
            ema.update(model)
        np.testing.assert_allclose(ema.shadow["weight"], target, atol=1e-6)

    def test_ema_apply_and_restore(self, rng):
        model = nn.Linear(3, 2, rng=rng)
        ema = ExponentialMovingAverage(model, decay=0.9)
        original = model.weight.data.copy()
        model.weight.data[...] = original + 1.0
        ema.update(model)
        ema.apply_to(model)
        assert not np.allclose(model.weight.data, original + 1.0)
        ema.restore(model)
        np.testing.assert_allclose(model.weight.data, original + 1.0)

    def test_ema_restore_without_apply(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        ema = ExponentialMovingAverage(model)
        with pytest.raises(RuntimeError):
            ema.restore(model)

    def test_ema_decay_validation(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(model, decay=1.0)
