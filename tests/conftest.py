"""Shared fixtures for the test-suite."""

import numpy as np
import pytest

from repro.data import NinaProDB6, NinaProDB6Config


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset() -> NinaProDB6:
    """A tiny synthetic NinaPro DB6 instance (seconds to generate)."""
    return NinaProDB6(NinaProDB6Config.tiny())


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    """Subject-1 split of the tiny dataset."""
    from repro.data import subject_split

    return subject_split(tiny_dataset, 1)
