"""Tests of the I-BERT integer-only kernels against float references."""

import numpy as np
import pytest
from scipy.special import erf, softmax as scipy_softmax

from repro.quant import (
    integer_erf,
    integer_exp,
    integer_gelu,
    integer_layernorm,
    integer_polynomial,
    integer_softmax,
    integer_sqrt,
)


def to_integer(values, scale):
    return np.round(values / scale).astype(np.int64)


class TestIntegerPolynomial:
    def test_matches_float_polynomial(self):
        scale = 0.01
        values = np.linspace(-1.5, 0.0, 50)
        q = to_integer(values, scale)
        q_out, scale_out = integer_polynomial(q, scale, (0.3585, 1.353, 0.344))
        expected = 0.3585 * (values + 1.353) ** 2 + 0.344
        np.testing.assert_allclose(q_out * scale_out, expected, atol=0.02)


class TestIntegerErfGelu:
    def test_erf_close_to_reference(self):
        """The I-BERT second-order polynomial has up to ~0.1 absolute error on
        raw erf near zero (by design: the error is suppressed by the ``x *``
        factor inside GELU); away from zero it is much tighter."""
        scale = 0.005
        values = np.linspace(-3, 3, 200)
        q_out, scale_out = integer_erf(to_integer(values, scale), scale)
        np.testing.assert_allclose(q_out * scale_out, erf(values), atol=0.11)
        tails = np.abs(values) > 1.5
        np.testing.assert_allclose((q_out * scale_out)[tails], erf(values)[tails], atol=0.03)

    def test_gelu_close_to_reference(self):
        scale = 0.005
        values = np.linspace(-4, 4, 200)
        q_out, scale_out = integer_gelu(to_integer(values, scale), scale)
        reference = values * 0.5 * (1.0 + erf(values / np.sqrt(2)))
        np.testing.assert_allclose(q_out * scale_out, reference, atol=0.05)

    def test_gelu_preserves_large_positive_values(self):
        scale = 0.01
        values = np.array([5.0, 8.0])
        q_out, scale_out = integer_gelu(to_integer(values, scale), scale)
        np.testing.assert_allclose(q_out * scale_out, values, rtol=0.02)


class TestIntegerExpSoftmax:
    def test_exp_matches_reference_for_negative_inputs(self):
        scale = 0.002
        values = np.linspace(-8, 0, 300)
        q_out, scale_out = integer_exp(to_integer(values, scale), scale)
        np.testing.assert_allclose(q_out * scale_out, np.exp(values), atol=0.02)

    def test_softmax_close_to_reference(self, rng):
        scale = 0.01
        logits = rng.standard_normal((4, 10)) * 3
        q_out, scale_out = integer_softmax(to_integer(logits, scale), scale, axis=-1)
        reference = scipy_softmax(logits, axis=-1)
        np.testing.assert_allclose(q_out * scale_out, reference, atol=0.02)

    def test_softmax_sums_to_one(self, rng):
        scale = 0.02
        logits = rng.standard_normal((8, 16))
        q_out, scale_out = integer_softmax(to_integer(logits, scale), scale)
        sums = (q_out * scale_out).sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=0.02)

    def test_softmax_argmax_preserved(self, rng):
        scale = 0.01
        logits = rng.standard_normal((20, 8)) * 2
        q_out, _ = integer_softmax(to_integer(logits, scale), scale)
        np.testing.assert_array_equal(q_out.argmax(axis=-1), logits.argmax(axis=-1))


class TestIntegerSqrt:
    def test_exact_on_perfect_squares(self):
        values = np.array([0, 1, 4, 9, 144, 10_000, 2**30])
        np.testing.assert_array_equal(integer_sqrt(values), np.sqrt(values).astype(np.int64))

    def test_floor_behaviour(self):
        np.testing.assert_array_equal(integer_sqrt(np.array([2, 8, 99])), [1, 2, 9])

    def test_large_values(self, rng):
        values = rng.integers(1, 2**40, size=100)
        result = integer_sqrt(values)
        assert np.all(result**2 <= values)
        assert np.all((result + 1) ** 2 > values)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            integer_sqrt(np.array([-1]))


class TestIntegerLayerNorm:
    def test_matches_float_layernorm(self, rng):
        scale = 0.01
        values = rng.standard_normal((4, 64)) * 2
        weight = np.ones(64)
        bias = np.zeros(64)
        q_out, scale_out = integer_layernorm(to_integer(values, scale), scale, weight, bias)
        reference = (values - values.mean(-1, keepdims=True)) / values.std(-1, keepdims=True)
        np.testing.assert_allclose(q_out * scale_out, reference, atol=0.08)

    def test_affine_parameters_applied(self, rng):
        scale = 0.01
        values = rng.standard_normal((2, 32))
        weight = 2.0 * np.ones(32)
        bias = 0.5 * np.ones(32)
        q_out, scale_out = integer_layernorm(to_integer(values, scale), scale, weight, bias)
        reference = 2.0 * (values - values.mean(-1, keepdims=True)) / values.std(-1, keepdims=True) + 0.5
        np.testing.assert_allclose(q_out * scale_out, reference, atol=0.15)
