"""Tests for the classical classifiers and the baseline pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DecisionTreeClassifier,
    FeaturePipeline,
    FeatureSet,
    KNeighborsClassifier,
    LinearDiscriminantAnalysis,
    LinearSVM,
    RandomForestClassifier,
    SoftmaxRegression,
    StandardScaler,
    default_baselines,
    evaluate_baselines,
    render_baseline_table,
)
from repro.data import NinaProDB6, NinaProDB6Config, subject_split

ALL_CLASSIFIERS = [
    LinearDiscriminantAnalysis,
    LinearSVM,
    SoftmaxRegression,
    KNeighborsClassifier,
    DecisionTreeClassifier,
    RandomForestClassifier,
]


def make_blobs(rng, num_classes=3, per_class=40, num_features=6, spread=0.6):
    """Well-separated Gaussian blobs: every sane classifier should ace them."""
    centers = rng.normal(scale=4.0, size=(num_classes, num_features))
    features, labels = [], []
    for label, center in enumerate(centers):
        features.append(center + rng.normal(scale=spread, size=(per_class, num_features)))
        labels.append(np.full(per_class, label))
    features = np.concatenate(features)
    labels = np.concatenate(labels)
    order = rng.permutation(len(labels))
    return features[order], labels[order]


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(11)


@pytest.fixture(scope="module")
def blobs(rng):
    return make_blobs(rng)


@pytest.fixture(scope="module")
def tiny_split():
    dataset = NinaProDB6(NinaProDB6Config.tiny())
    return subject_split(dataset, 1, include_pretrain=False)


# --------------------------------------------------------------------- #
# Scaler
# --------------------------------------------------------------------- #
class TestStandardScaler:
    def test_fit_transform_standardises(self, rng):
        features = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(features)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-6)

    def test_round_trip(self, rng):
        features = rng.normal(size=(50, 3))
        scaler = StandardScaler()
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.fit_transform(features)), features, atol=1e-9
        )

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(rng.normal(size=(5, 2)))

    def test_constant_feature_does_not_blow_up(self):
        features = np.ones((20, 2))
        transformed = StandardScaler().fit_transform(features)
        assert np.all(np.isfinite(transformed))


# --------------------------------------------------------------------- #
# Classifier contract shared by every baseline
# --------------------------------------------------------------------- #
class TestClassifierContract:
    @pytest.mark.parametrize("classifier_type", ALL_CLASSIFIERS)
    def test_separable_blobs_high_accuracy(self, classifier_type, blobs):
        features, labels = blobs
        classifier = classifier_type()
        classifier.fit(features[:90], labels[:90])
        assert classifier.score(features[90:], labels[90:]) >= 0.9

    @pytest.mark.parametrize("classifier_type", ALL_CLASSIFIERS)
    def test_predictions_are_known_classes(self, classifier_type, blobs, rng):
        features, labels = blobs
        classifier = classifier_type().fit(features, labels)
        predictions = classifier.predict(rng.normal(size=(10, features.shape[1])))
        assert set(np.unique(predictions)) <= set(np.unique(labels))

    @pytest.mark.parametrize("classifier_type", ALL_CLASSIFIERS)
    def test_predict_before_fit_raises(self, classifier_type, rng):
        with pytest.raises((RuntimeError, ValueError)):
            classifier_type().predict(rng.normal(size=(3, 4)))

    @pytest.mark.parametrize("classifier_type", ALL_CLASSIFIERS)
    def test_nonconsecutive_labels_supported(self, classifier_type, rng):
        features, labels = make_blobs(rng, num_classes=3)
        remapped = np.array([2, 5, 9])[labels]
        classifier = classifier_type().fit(features, remapped)
        predictions = classifier.predict(features)
        assert set(np.unique(predictions)) <= {2, 5, 9}
        assert np.mean(predictions == remapped) >= 0.9

    @pytest.mark.parametrize(
        "classifier_type",
        [LinearDiscriminantAnalysis, SoftmaxRegression, KNeighborsClassifier,
         DecisionTreeClassifier, RandomForestClassifier],
    )
    def test_probabilities_are_a_distribution(self, classifier_type, blobs):
        features, labels = blobs
        probabilities = classifier_type().fit(features, labels).predict_proba(features[:25])
        assert probabilities.shape == (25, 3)
        assert np.all(probabilities >= -1e-12)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)


# --------------------------------------------------------------------- #
# Classifier-specific behaviour
# --------------------------------------------------------------------- #
class TestLinearModels:
    def test_lda_shrinkage_validation(self):
        with pytest.raises(ValueError):
            LinearDiscriminantAnalysis(shrinkage=1.5)

    def test_lda_full_shrinkage_is_nearest_mean(self, rng):
        features, labels = make_blobs(rng, spread=0.3)
        full = LinearDiscriminantAnalysis(shrinkage=1.0).fit(features, labels)
        assert full.score(features, labels) >= 0.95

    def test_svm_decision_function_shape(self, blobs):
        features, labels = blobs
        svm = LinearSVM(epochs=10).fit(features, labels)
        assert svm.decision_function(features[:7]).shape == (7, 3)

    def test_svm_regularization_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(regularization=-1.0)

    def test_svm_deterministic_given_seed(self, blobs):
        features, labels = blobs
        first = LinearSVM(epochs=5, seed=3).fit(features, labels).predict(features)
        second = LinearSVM(epochs=5, seed=3).fit(features, labels).predict(features)
        np.testing.assert_array_equal(first, second)

    def test_softmax_overfits_training_set(self, rng):
        features, labels = make_blobs(rng, num_classes=4, per_class=25)
        model = SoftmaxRegression(epochs=400, learning_rate=0.8).fit(features, labels)
        assert model.score(features, labels) >= 0.97


class TestTreesAndNeighbors:
    def test_tree_depth_limit_respected(self, blobs):
        features, labels = blobs
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert tree.depth() <= 3

    def test_tree_pure_leaf_on_single_class(self, rng):
        features = rng.normal(size=(30, 4))
        labels = np.zeros(30, dtype=int)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.depth() == 0
        assert np.all(tree.predict(features) == 0)

    def test_tree_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_forest_beats_single_stump_on_noisy_data(self, rng):
        features, labels = make_blobs(rng, num_classes=4, per_class=60, spread=2.5)
        train, test = slice(0, 180), slice(180, None)
        stump = DecisionTreeClassifier(max_depth=2).fit(features[train], labels[train])
        forest = RandomForestClassifier(num_trees=25, max_depth=8, seed=1).fit(
            features[train], labels[train]
        )
        assert forest.score(features[test], labels[test]) >= stump.score(
            features[test], labels[test]
        )

    def test_forest_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(num_trees=0)

    def test_knn_requires_enough_samples(self, rng):
        with pytest.raises(ValueError):
            KNeighborsClassifier(num_neighbors=10).fit(rng.normal(size=(3, 2)), np.array([0, 1, 0]))

    def test_knn_one_neighbor_memorises_training_set(self, blobs):
        features, labels = blobs
        knn = KNeighborsClassifier(num_neighbors=1).fit(features, labels)
        assert knn.score(features, labels) == 1.0

    @given(st.integers(min_value=1, max_value=9))
    @settings(max_examples=10, deadline=None)
    def test_knn_accuracy_property_on_blobs(self, num_neighbors):
        rng = np.random.default_rng(5)
        features, labels = make_blobs(rng, num_classes=3, per_class=30, spread=0.4)
        knn = KNeighborsClassifier(num_neighbors=num_neighbors).fit(features, labels)
        assert knn.score(features, labels) >= 0.9


# --------------------------------------------------------------------- #
# Pipelines on the sEMG dataset
# --------------------------------------------------------------------- #
class TestFeaturePipeline:
    def test_pipeline_on_tiny_dataset(self, tiny_split):
        pipeline = FeaturePipeline(LinearDiscriminantAnalysis(), FeatureSet(("mav", "rms", "wl")))
        pipeline.fit(tiny_split.train)
        assert pipeline.feature_dimension == tiny_split.train.windows.shape[1] * 3
        train_accuracy = pipeline.score(tiny_split.train)
        chance = 1.0 / tiny_split.train.num_classes
        assert train_accuracy > 2 * chance

    def test_pipeline_generalises_above_chance(self, tiny_split):
        pipeline = FeaturePipeline(KNeighborsClassifier(num_neighbors=5)).fit(tiny_split.train)
        chance = 1.0 / tiny_split.train.num_classes
        assert pipeline.score(tiny_split.test) > chance

    def test_pipeline_predict_before_fit(self, tiny_split):
        with pytest.raises(RuntimeError):
            FeaturePipeline(LinearDiscriminantAnalysis()).predict(tiny_split.test.windows)

    def test_pipeline_rejects_empty_dataset(self, tiny_split):
        from repro.data import ArrayDataset

        empty = ArrayDataset(np.empty((0, 4, 10)), np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            FeaturePipeline(LinearDiscriminantAnalysis()).fit(empty)

    def test_default_baselines_registry(self):
        baselines = default_baselines()
        assert set(baselines) == {"LDA", "LinearSVM", "Softmax", "RandomForest", "kNN"}

    def test_evaluate_baselines_and_table(self, tiny_split):
        classifiers = {
            "LDA": LinearDiscriminantAnalysis(),
            "kNN": KNeighborsClassifier(num_neighbors=3),
        }
        results = evaluate_baselines(tiny_split, classifiers=classifiers)
        assert {result.name for result in results} == {"LDA", "kNN"}
        for result in results:
            assert 0.0 <= result.test_accuracy <= 1.0
            assert set(result.per_session) == set(tiny_split.test_per_session)
        table = render_baseline_table(results)
        assert "LDA" in table and "kNN" in table and "%" in table

    def test_classical_baselines_overfit_relative_to_test(self, tiny_split):
        """The motivating observation: classical pipelines fit the training
        sessions almost perfectly but drop sharply on later sessions."""
        results = evaluate_baselines(
            tiny_split, classifiers={"LDA": LinearDiscriminantAnalysis()}
        )
        result = results[0]
        assert result.train_accuracy > result.test_accuracy
