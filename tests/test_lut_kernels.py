"""Exhaustive LUT-vs-elementwise equality for the integer nonlinearities.

The int8 serving path executes the I-BERT GELU and softmax through
precomputed lookup tables (see ``docs/quantization.md``).  The contract is
*bit-identity over the full representable input domain*: for every
requantisation configuration reachable from the model registry, every value
an int8 activation grid can take must map to exactly the same output under
the table gather as under the legacy elementwise polynomial kernels.

These tests pin that contract three ways:

* table entries against an independent replay of the elementwise chain
  over the whole domain;
* node-level execution (both executors on crafted full-domain tensors);
* whole-graph execution on random inputs, plus the opt-out flag, the
  serving backends and the generated C schedule.

All randomness comes from local generators — the shared session ``rng``
fixture is deliberately not used (its draw order is load-bearing for other
tests).
"""

import numpy as np
import pytest

from repro.deploy import (
    LUT_OPERATORS,
    IntegerGraphExecutor,
    LookupTable,
    generate_c_sources,
    lower_to_int8,
    trace_model,
)
from repro.deploy.int_engine import requantize
from repro.models import available_models, build_model
from repro.quant import ibert
from repro.serve import BackendCache, InferenceServer, build_int8_backend

GEOMETRY = dict(num_channels=4, window_samples=60, seed=11)
#: Registry entries with transformer nonlinearities (TEMPONet is conv/ReLU
#: only and must lower without any tables).
ATTENTION_MODELS = ("bio1", "bio2")


def make_model(name, patch_size=10):
    return build_model(name, patch_size=patch_size, **GEOMETRY).eval()


def lower_registry_model(name, patch_size=10, seed=2024, **lower_kwargs):
    rng = np.random.default_rng(seed)
    calibration = rng.normal(size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"]))
    return lower_to_int8(trace_model(make_model(name, patch_size)), calibration, **lower_kwargs)


@pytest.fixture(scope="module")
def lowered_registry():
    """Every registry architecture lowered at the deployment-unit geometry."""
    return {name: lower_registry_model(name) for name in available_models()}


def lut_nodes(quantized, op):
    return [
        (node, quantized.nodes[node.name])
        for node in quantized.graph.nodes
        if node.op == op
    ]


# --------------------------------------------------------------------- #
# Table construction coverage
# --------------------------------------------------------------------- #
class TestTableCoverage:
    def test_every_registry_nonlinearity_gets_a_table(self, lowered_registry):
        for name in ATTENTION_MODELS:
            quantized = lowered_registry[name]
            assert quantized.uses_luts
            for node in quantized.graph.nodes:
                lowered = quantized.nodes[node.name]
                if node.op in LUT_OPERATORS:
                    role = "gelu" if node.op == "gelu" else "exp"
                    assert role in lowered.luts, f"{name}:{node.name} missing LUT"
                else:
                    assert not lowered.luts

    def test_temponet_has_no_lut_ops(self, lowered_registry):
        quantized = lowered_registry["temponet"]
        assert not quantized.uses_luts
        assert quantized.total_lut_bytes == 0

    def test_table_sizes_cover_the_domain(self, lowered_registry):
        for name in ATTENTION_MODELS:
            quantized = lowered_registry[name]
            for node, lowered in lut_nodes(quantized, "gelu"):
                in_act = quantized.activations[node.inputs[0]]
                table = lowered.luts["gelu"]
                assert (table.domain_min, table.domain_max) == (in_act.qmin, in_act.qmax)
                assert table.size == in_act.qmax - in_act.qmin + 1
            for node, lowered in lut_nodes(quantized, "softmax"):
                in_act = quantized.activations[node.inputs[0]]
                table = lowered.luts["exp"]
                assert (table.domain_min, table.domain_max) == (
                    in_act.qmin - in_act.qmax,
                    0,
                )

    def test_lookup_table_rejects_wrong_entry_count(self):
        with pytest.raises(ValueError, match="entries"):
            LookupTable(op="gelu", domain_min=-128, domain_max=127, values=np.zeros(17))

    def test_lookup_table_take_is_a_domain_gather(self):
        table = LookupTable(
            op="exp", domain_min=-3, domain_max=0, values=np.array([10, 20, 30, 40])
        )
        np.testing.assert_array_equal(
            table.take(np.array([[-3, 0], [-1, -2]])), [[10, 40], [30, 20]]
        )
        assert table.nbytes == 16  # int32 storage

    def test_lookup_table_take_rejects_out_of_domain_inputs(self):
        """Out-of-domain values must fail loudly, not wrap Python-style."""
        table = LookupTable(
            op="exp", domain_min=-3, domain_max=0, values=np.array([10, 20, 30, 40])
        )
        with pytest.raises(ValueError, match="outside"):
            table.take(np.array([-4]))
        with pytest.raises(ValueError, match="outside"):
            table.take(np.array([1]))


# --------------------------------------------------------------------- #
# Exhaustive-domain equality, per requantisation configuration
# --------------------------------------------------------------------- #
class TestExhaustiveDomainEquality:
    @pytest.mark.parametrize("name", ATTENTION_MODELS)
    def test_gelu_tables_match_elementwise_chain_over_full_domain(
        self, lowered_registry, name
    ):
        """Independent replay: every int8 input value, every gelu config."""
        quantized = lowered_registry[name]
        for node, lowered in lut_nodes(quantized, "gelu"):
            in_act = quantized.activations[node.inputs[0]]
            out_act = quantized.activations[node.output.name]
            domain = np.arange(in_act.qmin, in_act.qmax + 1, dtype=np.int64)
            q_out, gelu_scale = ibert.integer_gelu(domain, in_act.scale)
            expected = requantize(
                q_out, gelu_scale / out_act.scale, out_act.qmin, out_act.qmax
            )
            np.testing.assert_array_equal(lowered.luts["gelu"].values, expected)

    @pytest.mark.parametrize("name", ATTENTION_MODELS)
    def test_exp_tables_match_integer_exp_over_full_domain(self, lowered_registry, name):
        quantized = lowered_registry[name]
        for node, lowered in lut_nodes(quantized, "softmax"):
            in_act = quantized.activations[node.inputs[0]]
            table = lowered.luts["exp"]
            domain = np.arange(table.domain_min, table.domain_max + 1, dtype=np.int64)
            expected, _ = ibert.integer_exp(domain, in_act.scale)
            np.testing.assert_array_equal(table.values, expected)

    @pytest.mark.parametrize("name", ATTENTION_MODELS)
    def test_gelu_node_execution_equal_over_full_domain(self, lowered_registry, name):
        """Both executors, node level, every representable input at once."""
        quantized = lowered_registry[name]
        with_lut = IntegerGraphExecutor(quantized)
        elementwise = IntegerGraphExecutor(quantized, use_lut=False)
        for node, _ in lut_nodes(quantized, "gelu"):
            in_act = quantized.activations[node.inputs[0]]
            full = np.arange(in_act.qmin, in_act.qmax + 1, dtype=np.int32)[None, :]
            tensors = {node.inputs[0]: full}
            np.testing.assert_array_equal(
                with_lut._run_node(node, dict(tensors)),
                elementwise._run_node(node, dict(tensors)),
            )

    @pytest.mark.parametrize("name", ATTENTION_MODELS)
    def test_softmax_node_execution_equal_over_full_shifted_domain(
        self, lowered_registry, name
    ):
        """A row spanning [qmin, qmax] exercises every shifted exp input."""
        quantized = lowered_registry[name]
        with_lut = IntegerGraphExecutor(quantized)
        elementwise = IntegerGraphExecutor(quantized, use_lut=False)
        rng = np.random.default_rng(99)
        for node, _ in lut_nodes(quantized, "softmax"):
            in_act = quantized.activations[node.inputs[0]]
            full_row = np.arange(in_act.qmin, in_act.qmax + 1, dtype=np.int32)[None, :]
            random_rows = rng.integers(
                in_act.qmin, in_act.qmax + 1, size=(8, 33)
            ).astype(np.int32)
            for q_x in (full_row, random_rows):
                tensors = {node.inputs[0]: q_x}
                np.testing.assert_array_equal(
                    with_lut._run_node(node, dict(tensors)),
                    elementwise._run_node(node, dict(tensors)),
                )

    def test_equality_holds_for_other_activation_widths(self):
        """The domain bounds follow the lowered bit width (ablation widths)."""
        quantized = lower_registry_model("bio1", activation_bits=6)
        for node, lowered in lut_nodes(quantized, "gelu"):
            in_act = quantized.activations[node.inputs[0]]
            assert (in_act.qmin, in_act.qmax) == (-32, 31)
            assert lowered.luts["gelu"].size == 64
        with_lut = IntegerGraphExecutor(quantized)
        elementwise = IntegerGraphExecutor(quantized, use_lut=False)
        x = np.random.default_rng(5).normal(size=(4, 4, 60))
        np.testing.assert_array_equal(with_lut.run_integer(x), elementwise.run_integer(x))

    def test_second_patch_size_config_is_also_exact(self):
        """A different registry patch size produces different scales — still exact."""
        quantized = lower_registry_model("bio2", patch_size=20, seed=7)
        with_lut = IntegerGraphExecutor(quantized)
        elementwise = IntegerGraphExecutor(quantized, use_lut=False)
        x = np.random.default_rng(8).normal(size=(6, 4, 60))
        np.testing.assert_array_equal(with_lut.run_integer(x), elementwise.run_integer(x))


# --------------------------------------------------------------------- #
# Whole-graph and flag semantics
# --------------------------------------------------------------------- #
class TestWholeGraphParity:
    @pytest.mark.parametrize("name", ATTENTION_MODELS)
    def test_lut_and_elementwise_runs_are_bitwise_equal(self, lowered_registry, name):
        quantized = lowered_registry[name]
        with_lut = IntegerGraphExecutor(quantized)
        elementwise = IntegerGraphExecutor(quantized, use_lut=False)
        assert with_lut.uses_luts and not elementwise.uses_luts
        x = np.random.default_rng(3).normal(size=(6, 4, 60))
        np.testing.assert_array_equal(with_lut.run_integer(x), elementwise.run_integer(x))
        np.testing.assert_array_equal(with_lut.run(x), elementwise.run(x))

    def test_lowering_opt_out_emits_no_tables_and_matches(self):
        with_tables = lower_registry_model("bio1")
        without = lower_registry_model("bio1", use_lut=False)
        assert not without.uses_luts
        assert without.total_lut_bytes == 0
        assert all(not node.luts for node in without.nodes.values())
        x = np.random.default_rng(4).normal(size=(5, 4, 60))
        np.testing.assert_array_equal(
            IntegerGraphExecutor(with_tables).run_integer(x),
            IntegerGraphExecutor(without).run_integer(x),
        )

    def test_executor_on_tableless_graph_falls_back_silently(self):
        quantized = lower_registry_model("bio1", use_lut=False)
        executor = IntegerGraphExecutor(quantized)  # asks for LUTs, none exist
        assert not executor.uses_luts
        x = np.random.default_rng(6).normal(size=(3, 4, 60))
        assert executor.run_integer(x).shape == (3, 8)


# --------------------------------------------------------------------- #
# Serving backends and the cache
# --------------------------------------------------------------------- #
class TestServingIntegration:
    def test_backend_flag_parity(self):
        model = make_model("bio1")
        calibration = np.random.default_rng(10).normal(size=(16, 4, 60))
        fast = build_int8_backend(model, calibration, use_lut=True)
        legacy = build_int8_backend(model, calibration, use_lut=False)
        assert fast.uses_lut and not legacy.uses_lut
        x = np.random.default_rng(11).normal(size=(5, 4, 60))
        np.testing.assert_array_equal(fast.run(x), legacy.run(x))
        np.testing.assert_array_equal(fast.run_integer(x), legacy.run_integer(x))

    def test_server_lut_variants_get_distinct_cache_entries(self):
        cache = BackendCache()
        calibration = np.random.default_rng(12).normal(size=(8, 4, 60))
        kwargs = dict(
            patch_size=10, model_kwargs=GEOMETRY, calibration=calibration, cache=cache
        )
        x = np.random.default_rng(13).normal(size=(4, 4, 60))
        with InferenceServer("bio1", "int8", **kwargs) as fast:
            with InferenceServer(
                "bio1", "int8", lower_kwargs={"use_lut": False}, **kwargs
            ) as legacy:
                assert fast.backend is not legacy.backend
                assert fast.backend.uses_lut and not legacy.backend.uses_lut
                np.testing.assert_array_equal(fast.infer(x), legacy.infer(x))
        assert len(cache) == 2
        # The key is normalised against the lowering default: an explicit
        # use_lut=True and the default must share one cached backend.
        with InferenceServer(
            "bio1", "int8", lower_kwargs={"use_lut": True}, **kwargs
        ) as explicit:
            assert explicit.backend is fast.backend
        assert len(cache) == 2


# --------------------------------------------------------------------- #
# Code generation of the LUT op set
# --------------------------------------------------------------------- #
class TestLutCodegen:
    def test_schedule_uses_lut_kernels_and_emits_tables(self, lowered_registry):
        quantized = lowered_registry["bio1"]
        sources = generate_c_sources(quantized)
        network = sources["network.c"].content
        weights = sources["weights.h"].content
        kernels = sources["kernels.h"].content
        assert "net_gelu_lut_i8" in network
        assert "net_softmax_lut_i8" in network
        assert "net_gelu_i8" not in network and "net_softmax_i8" not in network
        assert "_lut_gelu[" in weights and "_lut_exp[" in weights
        assert "_DOMAIN_MIN" in weights
        assert "void net_gelu_lut_i8(" in kernels
        assert "void net_softmax_lut_i8(" in kernels
        header = sources["network.h"].content
        assert f"#define NETWORK_LUT_BYTES {quantized.total_lut_bytes}" in header

    def test_opt_out_keeps_the_legacy_schedule(self, lowered_registry):
        quantized = lowered_registry["bio1"]
        sources = generate_c_sources(quantized, use_lut=False)
        network = sources["network.c"].content
        assert "net_gelu_i8" in network and "net_softmax_i8" in network
        assert "_lut_" not in sources["weights.h"].content
        assert "#define NETWORK_LUT_BYTES 0" in sources["network.h"].content

    def test_lut_bytes_accounting(self, lowered_registry):
        quantized = lowered_registry["bio1"]
        expected = sum(
            table.nbytes
            for node in quantized.nodes.values()
            for table in node.luts.values()
        )
        assert quantized.total_lut_bytes == expected > 0
        # Tables are accounted separately from the Table-I weight column.
        assert quantized.total_weight_bytes == sum(
            node.weight_bytes for node in quantized.nodes.values()
        )
