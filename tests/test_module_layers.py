"""Tests of the module system and the stateful layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.module import Module, Parameter


class TestModuleRegistration:
    def test_parameters_are_registered_on_assignment(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones((2, 2)))
                self.child = nn.Linear(2, 2)

        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "weight" in names
        assert "child.weight" in names and "child.bias" in names

    def test_num_parameters(self):
        layer = nn.Linear(10, 4)
        assert layer.num_parameters() == 10 * 4 + 4

    def test_modules_and_children_traversal(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        assert len(list(model.children())) == 3
        assert len(list(model.modules())) == 4  # container + 3 children

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_all(self):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_children(self):
        text = repr(nn.Sequential(nn.Linear(2, 2)))
        assert "Linear" in text


class TestStateDict:
    def test_roundtrip(self):
        source = nn.Sequential(nn.Linear(4, 3), nn.ReLU(), nn.Linear(3, 2))
        target = nn.Sequential(nn.Linear(4, 3), nn.ReLU(), nn.Linear(3, 2))
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_strict_mismatch_raises(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 2))})  # missing bias

    def test_shape_mismatch_raises(self):
        model = nn.Linear(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffers_included(self):
        bn = nn.BatchNorm1d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_non_strict_allows_subset(self):
        model = nn.Linear(2, 2)
        model.load_state_dict({"weight": np.ones((2, 2))}, strict=False)
        np.testing.assert_allclose(model.weight.data, np.ones((2, 2)))


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(nn.Linear(3, 3), nn.ReLU())
        out = model(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 3)
        assert np.all(out.data >= 0)

    def test_sequential_indexing_and_len(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)

    def test_modulelist_registers_parameters(self):
        blocks = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(blocks) == 3
        assert len(blocks.parameters()) == 6

    def test_modulelist_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([nn.ReLU()])(Tensor([1.0]))


class TestLinearLayer:
    def test_shapes_and_no_bias(self, rng):
        layer = nn.Linear(6, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert layer(Tensor(np.ones((5, 6)))).shape == (5, 3)

    def test_3d_input(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        assert layer(Tensor(np.ones((2, 7, 4)))).shape == (2, 7, 2)

    def test_deterministic_with_seeded_rng(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(5))
        b = nn.Linear(4, 4, rng=np.random.default_rng(5))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestConv1dLayer:
    def test_output_length_helper_matches_forward(self, rng):
        layer = nn.Conv1d(3, 8, kernel_size=5, stride=2, padding=2, dilation=2, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 40))))
        assert out.shape[-1] == layer.output_length(40)

    def test_patch_embedding_geometry(self, rng):
        """The Bioformer front-end: kernel == stride, no padding."""
        layer = nn.Conv1d(14, 64, kernel_size=10, stride=10, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 14, 300))))
        assert out.shape == (1, 64, 30)

    def test_bias_toggle(self, rng):
        layer = nn.Conv1d(2, 2, 3, bias=False, rng=rng)
        assert layer.bias is None


class TestNormalisationLayers:
    def test_layernorm_learnable_parameters(self, rng):
        layer = nn.LayerNorm(16)
        out = layer(Tensor(rng.standard_normal((4, 16))))
        assert out.shape == (4, 16)
        assert layer.weight.shape == (16,) and layer.bias.shape == (16,)

    def test_batchnorm_running_stats_update_only_in_training(self, rng):
        layer = nn.BatchNorm1d(3)
        x = Tensor(rng.standard_normal((32, 3)) + 4)
        layer.train()
        layer(x)
        mean_after_train = layer.running_mean.copy()
        layer.eval()
        layer(x)
        np.testing.assert_allclose(layer.running_mean, mean_after_train)

    def test_batchnorm_eval_deterministic(self, rng):
        layer = nn.BatchNorm1d(3)
        layer.eval()
        x = Tensor(rng.standard_normal((8, 3)))
        np.testing.assert_allclose(layer(x).data, layer(x).data)


class TestUtilityLayers:
    def test_dropout_module_respects_mode(self, rng):
        layer = nn.Dropout(0.9, rng=rng)
        x = Tensor(np.ones((100,)))
        layer.eval()
        np.testing.assert_allclose(layer(x).data, 1.0)
        layer.train()
        assert (layer(x).data == 0).any()

    def test_flatten(self):
        assert nn.Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_pooling_modules(self, rng):
        x = Tensor(rng.standard_normal((2, 4, 12)))
        assert nn.AvgPool1d(2)(x).shape == (2, 4, 6)
        assert nn.MaxPool1d(3)(x).shape == (2, 4, 4)
        assert nn.GlobalAveragePool1d()(x).shape == (2, 4)

    def test_activation_modules(self, rng):
        x = Tensor(rng.standard_normal((3, 3)))
        for module in (nn.ReLU(), nn.GELU(), nn.Tanh(), nn.Sigmoid()):
            assert module(x).shape == (3, 3)


class TestInitializers:
    def test_fan_computation(self):
        from repro.nn.init import calculate_fan

        assert calculate_fan((8, 4)) == (4, 8)
        assert calculate_fan((16, 3, 5)) == (15, 80)

    def test_fan_rejects_1d(self):
        from repro.nn.init import calculate_fan

        with pytest.raises(ValueError):
            calculate_fan((4,))

    def test_xavier_bounds(self, rng):
        from repro.nn.init import xavier_uniform

        values = xavier_uniform((100, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(values) <= bound + 1e-12)

    def test_kaiming_normal_scale(self, rng):
        from repro.nn.init import kaiming_normal

        values = kaiming_normal((2000, 100), rng)
        assert values.std() == pytest.approx(np.sqrt(2.0 / 100), rel=0.1)
