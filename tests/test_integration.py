"""End-to-end integration tests: data -> training -> quantisation -> deployment.

These exercise the full pipeline a user of the library would run, at the
tiny scale so the whole file completes in well under a minute.
"""

import numpy as np
import pytest

from repro.data import DataLoader, NinaProDB6, NinaProDB6Config, subject_split
from repro.hw import GAP8Config, deploy
from repro.models import BioformerConfig, bioformer_bio1, temponet
from repro.nn import Adam, CrossEntropyLoss, Tensor, save_checkpoint, load_checkpoint
from repro.quant import QATConfig, evaluate_quantized, quantization_aware_finetune
from repro.training import (
    ProtocolConfig,
    Trainer,
    TrainingConfig,
    evaluate,
    run_two_step_protocol,
    train_subject_specific,
)


class TestEndToEndPipeline:
    def test_full_paper_pipeline_at_tiny_scale(self, tiny_dataset, tiny_split):
        """Train -> pre-train protocol -> QAT -> int8 eval -> GAP8 deployment."""
        window = tiny_dataset.config.window_samples
        model = bioformer_bio1(patch_size=10, window_samples=window, seed=2)

        outcome = run_two_step_protocol(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
        assert 0.0 <= outcome.test_accuracy <= 1.0

        quantization_aware_finetune(model, tiny_split.train, QATConfig.tiny())
        quantized = evaluate_quantized(
            model, tiny_split.test, calibration=tiny_split.train, num_classes=8
        )

        record = deploy(
            BioformerConfig(depth=1, num_heads=8, patch_size=10),
            quantized_accuracy=quantized.accuracy,
        )
        assert record.memory_kilobytes < 512  # fits GAP8 L2
        assert record.latency_ms < 10
        assert record.duty_cycle.battery_life_hours > 50

    def test_training_improves_over_chance(self, tiny_dataset, tiny_split):
        """Even the tiny budget beats the 1/8 chance level on the train set."""
        window = tiny_dataset.config.window_samples
        model = bioformer_bio1(patch_size=10, window_samples=window, seed=0)
        outcome = train_subject_specific(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
        assert outcome.train_history.final_train_accuracy > 1.5 / 8

    def test_checkpoint_roundtrip_preserves_predictions(self, tmp_path, tiny_dataset, tiny_split):
        window = tiny_dataset.config.window_samples
        model = bioformer_bio1(patch_size=10, window_samples=window, seed=4)
        train_subject_specific(model, tiny_split, ProtocolConfig.tiny(), num_classes=8)
        model.eval()
        x = Tensor(tiny_split.test.windows[:8])
        before = model(x).data.copy()

        path = str(tmp_path / "bioformer.npz")
        save_checkpoint(model, path)
        restored = bioformer_bio1(patch_size=10, window_samples=window, seed=99)
        load_checkpoint(restored, path)
        restored.eval()
        np.testing.assert_allclose(restored(x).data, before, atol=1e-10)

    def test_manual_training_loop_with_dataloader(self, tiny_dataset):
        """The low-level API (DataLoader + Adam + CrossEntropy) works without
        the Trainer convenience wrapper."""
        train = tiny_dataset.training_dataset(1)
        window = tiny_dataset.config.window_samples
        model = temponet(window_samples=window, seed=1)
        optimizer = Adam(model.parameters(), lr=1e-3)
        loss_function = CrossEntropyLoss()
        loader = DataLoader(train, batch_size=16, shuffle=True, rng=np.random.default_rng(0))

        first_loss, last_loss = None, None
        for windows, labels in loader:
            logits = model(Tensor(windows))
            loss = loss_function(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = float(loss.data)
            last_loss = float(loss.data)
        assert first_loss is not None and np.isfinite(last_loss)

    def test_trainer_generic_over_architectures(self, tiny_dataset):
        """The same Trainer drives both the transformer and the TCN."""
        train = tiny_dataset.training_dataset(1)
        window = tiny_dataset.config.window_samples
        for model in (
            bioformer_bio1(patch_size=10, window_samples=window),
            temponet(window_samples=window),
        ):
            trainer = Trainer(
                model,
                Adam(model.parameters(), lr=1e-3),
                config=TrainingConfig(epochs=1, batch_size=32),
                rng=np.random.default_rng(0),
            )
            history = trainer.fit(train)
            assert len(history.records) == 1

    def test_cross_subject_generalisation_gap(self, tiny_dataset):
        """A model trained on subject 1 does better on subject 1's test data
        than on subject 2's — the subject-specificity that motivates the
        paper's per-subject fine-tuning."""
        window = tiny_dataset.config.window_samples
        split_1 = subject_split(tiny_dataset, 1, include_pretrain=False)
        model = bioformer_bio1(patch_size=10, window_samples=window, seed=6)
        protocol = ProtocolConfig(standard_epochs=6, standard_lr=1e-3, batch_size=32)
        train_subject_specific(model, split_1, protocol, num_classes=8)
        own = evaluate(model, split_1.test, num_classes=8).accuracy
        other = evaluate(model, tiny_dataset.testing_dataset(2), num_classes=8).accuracy
        assert own >= other - 0.05

    def test_deployment_of_every_registry_model(self):
        """Every architecture in the registry passes the deployment pipeline."""
        from repro.models import TEMPONetConfig

        for config in (
            BioformerConfig(depth=1, num_heads=8, patch_size=10),
            BioformerConfig(depth=2, num_heads=2, patch_size=30),
            TEMPONetConfig(),
        ):
            record = deploy(config, gap8=GAP8Config())
            assert record.mmacs > 0 and record.latency_ms > 0
            assert record.memory_kilobytes < 512
