"""Acceptance suite for the streaming evaluation harness (``repro.eval``).

Pins the contracts the harness sells:

* seeded recordings and scenario corruptions reproduce **bitwise**;
* the evaluator's metrics on a hand-constructed recording match values
  computed by hand (accuracy, transition lag, decision latency);
* the vote-depth sweep is consistent with the pinned ``MajorityVoter``
  semantics (depth 1 == raw argmax; the session's own depth replays
  exactly);
* float and int8 backends evaluated on the same recording agree on every
  (non-degraded) decision;
* a dead-electrode scenario streamed through the *session layer* comes
  back flagged ``degraded=True``, and its masked signal equals what the
  augmentation-side ``channel_dropout`` fill convention produces — the
  cross-check that keeps the two paths from diverging silently.
"""

import numpy as np
import pytest

from repro.data import CHANNEL_FILL_VALUE
from repro.data.augmentation import channel_dropout
from repro.data.windowing import sliding_windows
from repro.eval import (
    GestureSegment,
    RecordingGenerator,
    Scenario,
    ScenarioSuite,
    StreamEvaluator,
    SyntheticRecording,
    accuracy_vs_deadline,
    fit_probe_model,
)
from repro.serve import (
    BackendCache,
    InferenceServer,
    build_float_backend,
    build_int8_backend,
)
from repro.serve.sessions import SessionManager
from repro.serve.stream import StreamSession

GEOMETRY = dict(num_channels=4, num_classes=5)
WINDOW, SLIDE = 60, 30
SEGMENT_LABELS = [0, 2, 1, 3, 2, 4]
SEGMENT_SAMPLES = 600


@pytest.fixture(scope="module")
def generator():
    return RecordingGenerator(
        class_separation=2.5, noise_std=0.25, seed=7, **GEOMETRY
    )


@pytest.fixture(scope="module")
def probe(generator):
    return fit_probe_model(generator, WINDOW, windows_per_class=16, epochs=6)


@pytest.fixture(scope="module")
def float_backend(probe):
    return build_float_backend(probe)


@pytest.fixture(scope="module")
def recording(generator):
    # Seed 5 is one of the verified float/int8 zero-disagreement seeds.
    return gen_recording(generator, seed=5)


def gen_recording(generator, seed):
    return generator.recording(SEGMENT_LABELS, SEGMENT_SAMPLES, seed=seed)


# --------------------------------------------------------------------- #
# Recordings: geometry, labels, determinism
# --------------------------------------------------------------------- #
class TestSyntheticRecording:
    def test_segments_must_tile_contiguously(self):
        with pytest.raises(ValueError, match="contiguously"):
            SyntheticRecording(
                "bad",
                np.zeros((2, 20)),
                (GestureSegment(0, 0, 8), GestureSegment(1, 10, 20)),
                sampling_rate_hz=100.0,
            )
        with pytest.raises(ValueError, match="holds"):
            SyntheticRecording(
                "bad",
                np.zeros((2, 20)),
                (GestureSegment(0, 0, 8),),
                sampling_rate_hz=100.0,
            )

    def test_window_labels_use_last_sample_convention(self):
        recording = SyntheticRecording(
            "conv",
            np.zeros((1, 20)),
            (GestureSegment(0, 0, 10), GestureSegment(1, 10, 20)),
            sampling_rate_hz=100.0,
        )
        # Window j covers [2j, 2j+4); its last sample is 2j+3, which
        # enters segment 1 (start=10) first at j=4.
        np.testing.assert_array_equal(
            recording.window_labels(4, 2), [0, 0, 0, 0, 1, 1, 1, 1, 1]
        )

    def test_label_at_matches_segments(self):
        recording = SyntheticRecording(
            "conv",
            np.zeros((1, 20)),
            (GestureSegment(3, 0, 10), GestureSegment(1, 10, 20)),
            sampling_rate_hz=100.0,
        )
        assert recording.label_at(0) == 3
        assert recording.label_at(9) == 3
        assert recording.label_at(10) == 1
        assert recording.label_at(19) == 1

    def test_same_seed_reproduces_bitwise(self, generator):
        first = gen_recording(generator, seed=3)
        second = gen_recording(generator, seed=3)
        assert np.array_equal(first.signal, second.signal)
        assert first.segments == second.segments

    def test_generator_seed_is_part_of_identity(self, generator):
        other_gen = RecordingGenerator(
            class_separation=2.5, noise_std=0.25, seed=8, **GEOMETRY
        )
        assert not np.array_equal(
            gen_recording(generator, seed=3).signal,
            gen_recording(other_gen, seed=3).signal,
        )

    def test_different_call_seeds_differ(self, generator):
        assert not np.array_equal(
            gen_recording(generator, seed=3).signal,
            gen_recording(generator, seed=4).signal,
        )

    def test_training_windows_disjoint_from_recordings_and_seeded(self, generator):
        first = generator.windows(4, WINDOW, seed=11)
        second = generator.windows(4, WINDOW, seed=11)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        assert first[1].shape == (GEOMETRY["num_classes"] * 4,)


# --------------------------------------------------------------------- #
# Scenarios: determinism and the dead-electrode/fill-value contract
# --------------------------------------------------------------------- #
class TestScenarios:
    def test_suite_covers_taxonomy(self):
        suite = ScenarioSuite.default()
        kinds = {scenario.kind for scenario in suite}
        assert kinds == {"clean", "noise", "dead_electrodes", "dropout", "drift"}

    @pytest.mark.parametrize("name", ScenarioSuite.default().names)
    def test_scenarios_reproduce_bitwise(self, generator, name):
        recording = gen_recording(generator, seed=3)
        scenario = ScenarioSuite.default(seed=1)[name]
        assert np.array_equal(
            scenario.apply(recording).signal, scenario.apply(recording).signal
        )

    def test_corruption_never_touches_labels(self, generator):
        recording = gen_recording(generator, seed=3)
        for scenario in ScenarioSuite.default():
            corrupted = scenario.apply(recording)
            assert corrupted.segments == recording.segments
            np.testing.assert_array_equal(
                corrupted.window_labels(WINDOW, SLIDE),
                recording.window_labels(WINDOW, SLIDE),
            )

    def test_dead_electrode_flatlines_to_shared_fill_value(self, generator):
        recording = gen_recording(generator, seed=3)
        scenario = Scenario("dead", kind="dead_electrodes", dead_channels=(1, 3))
        corrupted = scenario.apply(recording)
        assert np.all(corrupted.signal[[1, 3]] == CHANNEL_FILL_VALUE)
        assert np.array_equal(corrupted.signal[[0, 2]], recording.signal[[0, 2]])

    def test_dropout_fill_matches_session_masking_convention(self):
        """The cross-check: augmentation's dropout fill and the session
        layer's dead-electrode mask must be the *same value*, so a model
        augmented against dropout sees exactly what serving produces."""
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(8, 4, 16)) + 5.0  # keep all samples off 0
        dropped = channel_dropout(batch, np.random.default_rng(1), probability=0.5)
        changed = ~np.isclose(dropped, batch)
        assert changed.any(), "dropout with p=0.5 on 32 channels must drop some"
        assert np.all(dropped[changed] == CHANNEL_FILL_VALUE)

        # And the session layer masks a dead channel to that exact value.
        seen = []

        def classify(windows):
            seen.append(windows.copy())
            return np.zeros(len(windows), dtype=np.int64)

        manager = SessionManager(
            classify=classify, window=16, num_channels=2, slide=16,
            dead_channel_min_samples=8,
        )
        session = manager.create_session(slide=16, smoothing=1)
        chunk = np.ones((2, 16))
        chunk[1] = 7.25  # flatlined at a non-fill value
        decisions = session.push(chunk)
        manager.close()
        assert decisions and decisions[0].degraded
        assert np.all(seen[0][:, 1, :] == CHANNEL_FILL_VALUE)


# --------------------------------------------------------------------- #
# Evaluator: hand-computed metrics on a hand-constructed recording
# --------------------------------------------------------------------- #
class TestHandComputedMetrics:
    @pytest.fixture()
    def report(self):
        # Channel-0 step from 0 to 1 at sample 10; fs = 1 kHz.
        signal = np.zeros((1, 20))
        signal[0, 10:] = 1.0
        recording = SyntheticRecording(
            "hand",
            signal,
            (GestureSegment(0, 0, 10), GestureSegment(1, 10, 20)),
            sampling_rate_hz=1000.0,
        )

        def classify(windows):
            return (windows[:, 0, :].mean(axis=1) > 0.5).astype(np.int64)

        evaluator = StreamEvaluator(
            classify, slide=2, smoothing=3, window=4, num_channels=1,
            vote_depths=(1, 3), chunk_size=3,
        )
        return evaluator.evaluate(recording)

    def test_window_counts_and_accuracy(self, report):
        # 9 windows; gt = [0]*4 + [1]*5.  Raw flips at j=5 (window
        # [10,14) fully in segment 1; j=4 straddles and means 0.5 -> 0),
        # so raw = [0]*5 + [1]*4: one error (j=4) -> 8/9.
        assert report.num_windows == 9
        assert report.window_accuracy == pytest.approx(8 / 9)
        assert report.accuracy_by_depth[1] == pytest.approx(8 / 9)

    def test_smoothed_accuracy(self, report):
        # Depth-3 vote turns raw [0,0,0,0,0,1,1,1,1] into
        # [0,0,0,0,0,0,1,1,1]: errors at j=4, j=5 -> 7/9.
        assert report.smoothed_accuracy == pytest.approx(7 / 9)
        assert report.vote_depth == 3

    def test_transition_lag_and_latency(self, report):
        assert len(report.transitions) == 2
        first, second = report.transitions
        # Segment 0: first window j=0 already correct -> lag 0; latency
        # is the pure windowing delay: (0*2 + 4 - 0) samples = 4 ms.
        assert first.lag_windows == 0
        assert first.latency_ms == pytest.approx(4.0)
        # Segment 1 (onset sample 10): owned from j=4, first correct
        # smoothed window j=6 -> lag 2; latency (6*2 + 4 - 10) = 6 ms.
        assert second.first_window == 4
        assert second.resolved_window == 6
        assert second.lag_windows == 2
        assert second.latency_ms == pytest.approx(6.0)
        assert report.unresolved_transitions == 0
        assert report.mean_transition_lag_windows == pytest.approx(1.0)
        assert report.max_transition_lag_windows == 2
        assert report.mean_decision_latency_ms == pytest.approx(5.0)
        assert report.max_decision_latency_ms == pytest.approx(6.0)

    def test_unresolved_transition_counted_not_averaged(self):
        # A classifier stuck on label 0 never resolves segment 1.
        signal = np.zeros((1, 20))
        signal[0, 10:] = 1.0
        recording = SyntheticRecording(
            "stuck",
            signal,
            (GestureSegment(0, 0, 10), GestureSegment(1, 10, 20)),
            sampling_rate_hz=1000.0,
        )
        evaluator = StreamEvaluator(
            lambda windows: np.zeros(len(windows), dtype=np.int64),
            slide=2, smoothing=3, window=4, num_channels=1,
        )
        report = evaluator.evaluate(recording)
        assert report.unresolved_transitions == 1
        # Only segment 0's instant resolution contributes to the stats.
        assert report.mean_transition_lag_windows == pytest.approx(0.0)
        assert report.max_decision_latency_ms == pytest.approx(4.0)


# --------------------------------------------------------------------- #
# Vote-depth sweep vs pinned MajorityVoter semantics
# --------------------------------------------------------------------- #
class TestVoteDepthSweep:
    def test_depth_one_equals_raw_accuracy(self, float_backend, recording):
        evaluator = StreamEvaluator(
            float_backend.predict, slide=SLIDE, smoothing=5,
            window=WINDOW, num_channels=GEOMETRY["num_channels"],
        )
        report = evaluator.evaluate(recording)
        assert report.accuracy_by_depth[1] == pytest.approx(report.window_accuracy)
        # The session's own depth is always part of the sweep and equals
        # the headline smoothed accuracy (replay consistency is asserted
        # inside evaluate(); this pins the surfaced numbers too).
        assert report.accuracy_by_depth[5] == pytest.approx(report.smoothed_accuracy)
        assert set(report.accuracy_by_depth) == {1, 3, 5, 9}

    def test_sweep_includes_session_depth_even_if_unlisted(self, float_backend, recording):
        evaluator = StreamEvaluator(
            float_backend.predict, slide=SLIDE, smoothing=7,
            window=WINDOW, num_channels=GEOMETRY["num_channels"],
            vote_depths=(1, 3),
        )
        report = evaluator.evaluate(recording)
        assert set(report.accuracy_by_depth) == {1, 3, 7}

    def test_deeper_votes_trade_lag_for_stability(self, float_backend, recording):
        """Deeper smoothing must never *raise* transition speed: the lag
        at depth 9 is >= the lag at depth 1 (monotone consistency of the
        sweep with the voter's windowed-majority semantics)."""
        lags = {}
        for depth in (1, 5, 9):
            evaluator = StreamEvaluator(
                float_backend.predict, slide=SLIDE, smoothing=depth,
                window=WINDOW, num_channels=GEOMETRY["num_channels"],
            )
            report = evaluator.evaluate(recording)
            assert report.unresolved_transitions == 0
            lags[depth] = report.mean_transition_lag_windows
        assert lags[1] <= lags[5] <= lags[9]


# --------------------------------------------------------------------- #
# Backend parity and the session layer's degraded flags
# --------------------------------------------------------------------- #
class TestBackendsAndDegradation:
    def test_float_and_int8_agree_on_every_decision(self, generator, probe, float_backend, recording):
        calibration, _ = generator.windows(16, WINDOW, seed=99)
        int8_backend = build_int8_backend(probe, calibration)
        kwargs = dict(
            window=WINDOW, slide=SLIDE,
            num_channels=GEOMETRY["num_channels"], smoothing=5,
        )
        float_session = StreamSession(float_backend.predict, **kwargs)
        int8_session = StreamSession(int8_backend.predict, **kwargs)
        float_decisions = float_session.run(recording.signal)
        int8_decisions = int8_session.run(recording.signal)
        assert len(float_decisions) == len(int8_decisions)
        for fd, qd in zip(float_decisions, int8_decisions):
            assert not fd.degraded and not qd.degraded
            assert (fd.window_index, fd.label, fd.smoothed_label) == (
                qd.window_index, qd.label, qd.smoothed_label
            )

    def test_dead_electrode_scenario_flags_degraded(self, probe, recording):
        scenario = Scenario("dead", kind="dead_electrodes", num_dead=1)
        with InferenceServer(probe, "float", cache=BackendCache()) as server:
            manager = server.open_session_manager(slide=SLIDE, smoothing=5)
            evaluator = StreamEvaluator(manager, slide=SLIDE, smoothing=5)
            clean = evaluator.evaluate(recording)
            dead = evaluator.evaluate(recording, scenario)
        assert scenario.expects_degraded
        assert clean.degraded_rate == 0.0
        # All but the warm-up windows (before dead_channel_min_samples
        # accumulate) must be flagged by the session layer.
        assert dead.degraded_rate > 0.9
        assert dead.num_degraded > 0

    def test_degraded_decisions_match_bare_masked_stream(self, float_backend, recording):
        """Managed masking must not *change* the numbers: a managed dead
        stream decides exactly like a bare session fed the pre-masked
        signal (fill-value alignment, end to end)."""
        scenario = Scenario("dead", kind="dead_electrodes", num_dead=1)
        corrupted = scenario.apply(recording)
        manager = SessionManager(
            classify=float_backend.predict, window=WINDOW,
            num_channels=GEOMETRY["num_channels"], slide=SLIDE, smoothing=5,
        )
        managed = manager.create_session(slide=SLIDE, smoothing=5)
        managed_decisions = managed.run(corrupted.signal)
        manager.close()
        bare = StreamSession(
            float_backend.predict, window=WINDOW, slide=SLIDE,
            num_channels=GEOMETRY["num_channels"], smoothing=5,
        )
        bare_decisions = bare.run(corrupted.signal)
        assert [d.label for d in managed_decisions] == [
            d.label for d in bare_decisions
        ]
        assert [d.smoothed_label for d in managed_decisions] == [
            d.smoothed_label for d in bare_decisions
        ]


# --------------------------------------------------------------------- #
# Evaluator plumbing across sources + the deadline curve
# --------------------------------------------------------------------- #
class TestEvaluatorSources:
    def test_all_sources_agree_on_clean_metrics(self, probe, float_backend, recording):
        kwargs = dict(slide=SLIDE, smoothing=5)
        bare = StreamEvaluator(
            float_backend.predict, window=WINDOW,
            num_channels=GEOMETRY["num_channels"], **kwargs,
        ).evaluate(recording)
        with InferenceServer(probe, "float", cache=BackendCache()) as server:
            served = StreamEvaluator(server, **kwargs).evaluate(recording)
            manager = server.open_session_manager(slide=SLIDE, smoothing=5)
            managed = StreamEvaluator(manager, **kwargs).evaluate(recording)
        for report in (served, managed):
            assert report.window_accuracy == pytest.approx(bare.window_accuracy)
            assert report.smoothed_accuracy == pytest.approx(bare.smoothed_accuracy)
            assert report.num_windows == bare.num_windows

    def test_callable_source_requires_geometry(self, float_backend):
        with pytest.raises(ValueError, match="window and num_channels"):
            StreamEvaluator(float_backend.predict, slide=SLIDE)

    def test_stream_chunking_does_not_change_metrics(self, float_backend, recording):
        reports = [
            StreamEvaluator(
                float_backend.predict, slide=SLIDE, smoothing=5, window=WINDOW,
                num_channels=GEOMETRY["num_channels"], chunk_size=chunk,
            ).evaluate(recording)
            for chunk in (17, 64, 999)
        ]
        for report in reports[1:]:
            assert report.window_accuracy == reports[0].window_accuracy
            assert report.smoothed_accuracy == reports[0].smoothed_accuracy

    def test_accuracy_vs_deadline_unlimited_matches_stream(self, probe, float_backend, recording):
        with InferenceServer(probe, "float", cache=BackendCache()) as server:
            curve = accuracy_vs_deadline(
                server, recording, slide=SLIDE, smoothing=5,
                deadlines=(None, 0.0),
            )
        unlimited = curve.unlimited
        assert unlimited.shed == 0
        streamed = StreamEvaluator(
            float_backend.predict, slide=SLIDE, smoothing=5, window=WINDOW,
            num_channels=GEOMETRY["num_channels"],
        ).evaluate(recording)
        # The deadline path cuts windows offline (bit-identical windower)
        # and votes with the same MajorityVoter: the unlimited point must
        # reproduce the streaming numbers exactly.
        assert unlimited.smoothed_accuracy == pytest.approx(streamed.smoothed_accuracy)
        assert unlimited.window_accuracy == pytest.approx(streamed.window_accuracy)
        zero = [p for p in curve.points if p.deadline_s == 0.0][0]
        assert zero.shed_rate == pytest.approx(1.0)
        assert zero.smoothed_accuracy == 0.0

    def test_offline_windows_match_streaming_geometry(self, recording):
        offline = sliding_windows(recording.signal, WINDOW, SLIDE)
        truth = recording.window_labels(WINDOW, SLIDE)
        assert len(offline) == len(truth)
