"""Property-style tests of the dynamic micro-batcher.

The batcher's contract: whatever the arrival pattern, no request is
dropped, none is duplicated, every caller gets exactly its own result, and
no micro-batch exceeds ``max_batch_size``.  The identity checks work by
serving an "echo" function whose output row encodes the input row, so any
reordering or duplication inside the batcher would corrupt the mapping.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import DynamicBatcher


def echo_batch(batch: np.ndarray) -> np.ndarray:
    """Identity backend: request payloads come straight back."""
    return np.asarray(batch)


class RecordingBackend:
    """Echo backend that records every micro-batch it executes."""

    def __init__(self, delay_s: float = 0.0):
        self.batches = []
        self.delay_s = delay_s
        self.lock = threading.Lock()

    def __call__(self, batch):
        if self.delay_s:
            time.sleep(self.delay_s)
        with self.lock:
            self.batches.append(np.asarray(batch).copy())
        return batch


# --------------------------------------------------------------------- #
# Core invariants under random arrival patterns
# --------------------------------------------------------------------- #
@given(
    payloads=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64),
    max_batch_size=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=25, deadline=None)
def test_no_drop_no_duplicate_no_reorder(payloads, max_batch_size):
    backend = RecordingBackend()
    with DynamicBatcher(backend, max_batch_size=max_batch_size, max_wait_s=0.001) as batcher:
        futures = [batcher.submit(np.array([value], dtype=np.int64)) for value in payloads]
        results = [int(future.result(timeout=10.0)[0]) for future in futures]
    # Every caller got exactly its own payload back, in submission order.
    assert results == payloads
    # No batch exceeded the cap and nothing was dropped or duplicated.
    assert all(batch.shape[0] <= max_batch_size for batch in backend.batches)
    flattened = [int(row[0]) for batch in backend.batches for row in batch]
    assert flattened == payloads  # single consumer => batches follow FIFO order


@given(
    payloads=st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=40),
    num_threads=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=15, deadline=None)
def test_concurrent_producers_each_get_their_own_result(payloads, num_threads):
    backend = RecordingBackend(delay_s=0.0005)
    outcomes = {}
    lock = threading.Lock()

    with DynamicBatcher(backend, max_batch_size=4, max_wait_s=0.002) as batcher:

        def producer(chunk):
            for value in chunk:
                result = batcher.submit(np.array([value], dtype=np.int64)).result(timeout=10.0)
                with lock:
                    outcomes[value] = int(result[0])

        unique = list(dict.fromkeys(payloads))
        chunks = [unique[index::num_threads] for index in range(num_threads)]
        threads = [threading.Thread(target=producer, args=(chunk,)) for chunk in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # Identity preserved under concurrency: every request answered by itself.
    assert outcomes == {value: value for value in dict.fromkeys(payloads)}
    assert all(batch.shape[0] <= 4 for batch in backend.batches)


# --------------------------------------------------------------------- #
# Batch-size and flush-timeout invariants
# --------------------------------------------------------------------- #
def test_full_batches_form_when_requests_are_queued():
    backend = RecordingBackend(delay_s=0.01)
    with DynamicBatcher(backend, max_batch_size=8, max_wait_s=0.5) as batcher:
        futures = [batcher.submit(np.array([i])) for i in range(32)]
        for future in futures:
            future.result(timeout=10.0)
    # With the worker busy, the queue backs up and batches fill to the cap;
    # the first batch may be smaller (it formed while the queue was empty).
    assert max(batch.shape[0] for batch in backend.batches) == 8
    assert batcher.stats.requests == 32
    assert sum(batch.shape[0] for batch in backend.batches) == 32


def test_flush_timeout_releases_partial_batch():
    backend = RecordingBackend()
    with DynamicBatcher(backend, max_batch_size=64, max_wait_s=0.02) as batcher:
        start = time.monotonic()
        result = batcher.submit(np.array([42])).result(timeout=10.0)
        elapsed = time.monotonic() - start
    assert int(result[0]) == 42
    # A lone request must not wait for a full batch, only for the timeout
    # (generous upper bound to stay robust on loaded CI machines).
    assert elapsed < 5.0
    assert backend.batches[0].shape[0] == 1


def test_max_batch_size_one_serves_requests_individually():
    backend = RecordingBackend()
    with DynamicBatcher(backend, max_batch_size=1, max_wait_s=0.0) as batcher:
        batcher.map([np.array([i]) for i in range(7)], timeout=10.0)
    assert all(batch.shape[0] == 1 for batch in backend.batches)
    assert batcher.stats.batches == 7


# --------------------------------------------------------------------- #
# Lifecycle and failure propagation
# --------------------------------------------------------------------- #
def test_close_drains_pending_requests():
    backend = RecordingBackend(delay_s=0.005)
    batcher = DynamicBatcher(backend, max_batch_size=4, max_wait_s=0.001)
    futures = [batcher.submit(np.array([i])) for i in range(20)]
    batcher.close()
    results = [int(future.result(timeout=1.0)[0]) for future in futures]
    assert results == list(range(20))


def test_submit_after_close_raises():
    batcher = DynamicBatcher(echo_batch)
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(np.array([1.0]))


def test_close_reports_clean_drain():
    batcher = DynamicBatcher(echo_batch, max_batch_size=4, max_wait_s=0.001)
    futures = [batcher.submit(np.array([i])) for i in range(5)]
    assert batcher.close(timeout=10.0) is True
    assert all(future.done() for future in futures)
    # Idempotent: closing an already-drained batcher still reports success.
    assert batcher.close(timeout=1.0) is True


def test_close_spends_a_single_timeout_budget():
    """Regression: ``close(timeout=t)`` used to give the worker join *and*
    the pool-future wait a full ``t`` each, so a wedged pipeline blocked
    for up to ``2 * t``.  Both phases now share one deadline, and an
    incomplete drain is reported instead of silently swallowed."""
    from repro.serve import WorkerPool

    release = threading.Event()

    def stuck_backend(batch):
        release.wait(timeout=30.0)
        return np.asarray(batch)

    pool = WorkerPool(num_workers=1)
    try:
        batcher = DynamicBatcher(
            stuck_backend, max_batch_size=1, max_wait_s=0.0, pool=pool
        )
        # Two single-request batches: the first occupies the only pool
        # worker (stuck in the backend), the second wedges the forming
        # thread on the dispatch throttle — so close() faces both a live
        # worker *and* an in-flight pool future, the exact shape that used
        # to spend the timeout twice.
        first = batcher.submit(np.array([1.0]))
        second = batcher.submit(np.array([2.0]))
        deadline = time.monotonic() + 5.0
        while not first.running() and time.monotonic() < deadline:
            time.sleep(0.001)
        start = time.monotonic()
        drained = batcher.close(timeout=0.4)
        elapsed = time.monotonic() - start
        assert drained is False  # the backend is stuck -> drain incomplete
        assert elapsed < 0.75  # one shared budget, not 2 x 0.4 s
        release.set()
        assert int(first.result(timeout=10.0)[0]) == 1
        assert int(second.result(timeout=10.0)[0]) == 2
        assert batcher.close(timeout=10.0) is True
    finally:
        release.set()
        pool.close()


def test_backend_error_propagates_to_every_future():
    def broken(batch):
        raise ValueError("backend exploded")

    with DynamicBatcher(broken, max_batch_size=4, max_wait_s=0.01) as batcher:
        futures = [batcher.submit(np.array([i])) for i in range(3)]
        for future in futures:
            with pytest.raises(ValueError, match="backend exploded"):
                future.result(timeout=10.0)


def test_row_count_mismatch_detected():
    def lossy(batch):
        return np.asarray(batch)[:-1] if len(batch) > 1 else np.asarray(batch)

    with DynamicBatcher(lossy, max_batch_size=8, max_wait_s=0.05) as batcher:
        futures = [batcher.submit(np.array([i])) for i in range(4)]
        # Every future either fails loudly (its batch lost a row) or echoes
        # its own payload; a silent wrong answer is impossible.
        for index, future in enumerate(futures):
            try:
                result = future.result(timeout=10.0)
            except RuntimeError as error:
                assert "rows" in str(error)
            else:
                assert int(result[0]) == index


def test_cancelled_request_is_dropped_and_worker_survives():
    backend = RecordingBackend(delay_s=0.02)
    with DynamicBatcher(backend, max_batch_size=1, max_wait_s=0.0) as batcher:
        first = batcher.submit(np.array([0]))  # occupies the worker
        queued = [batcher.submit(np.array([i])) for i in range(1, 6)]
        victim = queued[2]
        victim.cancel()
        survivors = [f for f in queued if f is not victim]
        results = [int(f.result(timeout=10.0)[0]) for f in [first] + survivors]
        assert results == [0, 1, 2, 4, 5]
        assert victim.cancelled() or int(victim.result(timeout=10.0)[0]) == 3
        # The worker must still be serving after the cancellation.
        assert int(batcher.submit(np.array([99])).result(timeout=10.0)[0]) == 99
    cancelled_payloads = {3} if victim.cancelled() else set()
    executed = {int(row[0]) for batch in backend.batches for row in batch}
    assert executed == {0, 1, 2, 3, 4, 5, 99} - cancelled_payloads


def test_map_of_zero_windows_returns_empty_result():
    """Regression: ``map([])`` used to crash in ``np.stack([])``."""
    with DynamicBatcher(echo_batch) as batcher:
        result = batcher.map([])
    assert isinstance(result, np.ndarray)
    assert result.shape[0] == 0


def test_malformed_request_fails_alone_not_its_batchmates():
    """Regression: one bad payload used to poison the whole micro-batch."""
    backend = RecordingBackend(delay_s=0.01)
    with DynamicBatcher(
        backend, max_batch_size=8, max_wait_s=0.05, input_shape=(1,)
    ) as batcher:
        blocker = batcher.submit(np.array([0]))  # occupy the worker
        good = [batcher.submit(np.array([i])) for i in range(1, 5)]
        bad = batcher.submit(np.zeros((3, 3)))  # wrong shape, same batch
        more_good = [batcher.submit(np.array([i])) for i in range(5, 8)]
        with pytest.raises(ValueError, match="shape"):
            bad.result(timeout=10.0)
        results = [int(f.result(timeout=10.0)[0]) for f in [blocker] + good + more_good]
    assert results == list(range(8))
    assert batcher.stats.malformed == 1
    assert batcher.stats.requests == 8


def test_majority_shape_defines_reference_when_unconfigured():
    """Without ``input_shape``, the batch's majority shape wins — a bad
    payload landing *first* in its micro-batch still fails alone."""
    backend = RecordingBackend()
    # Cap 3 + a generous flush window: all three requests below land in one
    # micro-batch (the cap fires as soon as the last one arrives).
    with DynamicBatcher(backend, max_batch_size=3, max_wait_s=1.0) as batcher:
        bad = batcher.submit(np.zeros((2, 2)))  # first of its batch, minority
        good = [batcher.submit(np.array([float(i)])) for i in (1, 2)]
        with pytest.raises(ValueError, match="shape"):
            bad.result(timeout=10.0)
        assert [int(f.result(timeout=10.0)[0]) for f in good] == [1, 2]
    assert batcher.stats.malformed == 1


def test_shape_tie_breaks_toward_earliest_submission():
    backend = RecordingBackend()
    with DynamicBatcher(backend, max_batch_size=2, max_wait_s=1.0) as batcher:
        first = batcher.submit(np.zeros((2, 2)))
        second = batcher.submit(np.array([1.0]))
        assert first.result(timeout=10.0).shape == (2, 2)
        with pytest.raises(ValueError, match="shape"):
            second.result(timeout=10.0)


def test_stats_is_an_immutable_snapshot():
    """Regression: ``stats`` used to hand out the live mutable counters."""
    with DynamicBatcher(echo_batch, max_batch_size=4, max_wait_s=0.01) as batcher:
        batcher.map([np.array([i]) for i in range(6)], timeout=10.0)
        before = batcher.stats
        assert before is not batcher.stats  # fresh snapshot per read
        with pytest.raises(AttributeError):
            before.requests = 10_000  # frozen dataclass
        with pytest.raises(TypeError):
            before.by_priority[0] = 10_000  # read-only mapping
        batcher.map([np.array([9])], timeout=10.0)
        after = batcher.stats
    assert before.requests == 6  # old snapshot unaffected by new traffic
    assert after.requests == 7


def test_map_returns_stacked_results_in_order():
    with DynamicBatcher(echo_batch, max_batch_size=4) as batcher:
        payloads = [np.array([float(i), float(-i)]) for i in range(10)]
        stacked = batcher.map(payloads, timeout=10.0)
    np.testing.assert_array_equal(stacked, np.stack(payloads))


def test_stats_track_batches():
    with DynamicBatcher(echo_batch, max_batch_size=4, max_wait_s=0.01) as batcher:
        batcher.map([np.array([i]) for i in range(9)], timeout=10.0)
    stats = batcher.stats
    assert stats.requests == 9
    assert 1 <= stats.max_batch <= 4
    assert stats.batches >= 3  # 9 requests cannot fit in fewer than 3 batches
    assert 0.0 < stats.mean_batch <= 4.0
