"""Tests for activation-memory planning and L1 tiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy import (
    TilingConfig,
    live_ranges,
    plan_activation_memory,
    plan_tiling,
    trace_bioformer,
    trace_temponet,
)
from repro.hw.gap8 import GAP8Config
from repro.models import Bioformer, BioformerConfig, bioformer_bio1, temponet


def small_bioformer(**overrides):
    config = BioformerConfig(
        num_channels=4, window_samples=60, patch_size=10, depth=1, num_heads=2, seed=21, **overrides
    )
    return Bioformer(config).eval()


@pytest.fixture(scope="module")
def bioformer_graph():
    return trace_bioformer(small_bioformer())


@pytest.fixture(scope="module")
def temponet_graph():
    return trace_temponet(temponet(num_channels=4, window_samples=80, seed=21).eval())


# --------------------------------------------------------------------- #
# Liveness analysis
# --------------------------------------------------------------------- #
class TestLiveness:
    def test_every_tensor_has_a_range(self, bioformer_graph):
        ranges = live_ranges(bioformer_graph)
        assert set(ranges) == set(bioformer_graph.tensor_specs())

    def test_ranges_are_well_formed(self, bioformer_graph):
        for live in live_ranges(bioformer_graph).values():
            assert live.start <= live.end
            assert live.size_bytes > 0

    def test_graph_input_starts_before_first_node(self, bioformer_graph):
        ranges = live_ranges(bioformer_graph)
        assert ranges[bioformer_graph.graph_input.name].start == -1

    def test_output_lives_until_the_end(self, bioformer_graph):
        ranges = live_ranges(bioformer_graph)
        assert ranges["logits"].end == len(bioformer_graph) - 1

    def test_residual_input_lives_across_the_block(self, bioformer_graph):
        # The block input feeds the residual add at the end of the attention
        # sub-block, so its lifetime must span the whole attention section.
        ranges = live_ranges(bioformer_graph)
        embedded = ranges["embedded"]
        residual_index = [
            index for index, node in enumerate(bioformer_graph) if node.name == "block0.attention_residual"
        ][0]
        assert embedded.end >= residual_index

    def test_overlap_predicate(self, bioformer_graph):
        ranges = live_ranges(bioformer_graph)
        names = list(ranges)
        assert ranges[names[0]].overlaps(ranges[names[0]])


# --------------------------------------------------------------------- #
# Arena packing
# --------------------------------------------------------------------- #
class TestMemoryPlan:
    def _assert_no_conflicts(self, plan):
        for first in plan.assignments:
            for second in plan.assignments:
                if first.name >= second.name:
                    continue
                if not plan.ranges[first.name].overlaps(plan.ranges[second.name]):
                    continue
                disjoint = (
                    first.end_offset <= second.offset or second.end_offset <= first.offset
                )
                assert disjoint, f"{first.name} and {second.name} overlap in time and space"

    def test_no_overlapping_live_buffers_bioformer(self, bioformer_graph):
        self._assert_no_conflicts(plan_activation_memory(bioformer_graph))

    def test_no_overlapping_live_buffers_temponet(self, temponet_graph):
        self._assert_no_conflicts(plan_activation_memory(temponet_graph))

    def test_peak_below_naive_total(self, temponet_graph):
        plan = plan_activation_memory(temponet_graph)
        assert plan.peak_bytes < plan.naive_bytes
        assert plan.reuse_factor > 1.5

    def test_peak_at_least_largest_tensor(self, bioformer_graph):
        plan = plan_activation_memory(bioformer_graph)
        assert plan.peak_bytes >= bioformer_graph.largest_activation().num_elements

    def test_paper_scale_bioformer_fits_l2_with_weights(self):
        model = bioformer_bio1(patch_size=10).eval()
        graph = trace_bioformer(model)
        plan = plan_activation_memory(graph)
        weights = graph.weight_bytes(bits_per_weight=8)
        assert plan.fits(GAP8Config().l2_bytes, weight_bytes=weights)

    def test_offset_lookup_and_summary(self, bioformer_graph):
        plan = plan_activation_memory(bioformer_graph)
        assert plan.offset_of("logits") >= 0
        with pytest.raises(KeyError):
            plan.offset_of("not_a_tensor")
        summary = plan.summary()
        assert "peak" in summary and "logits" in summary

    def test_bytes_per_element_scales_plan(self, bioformer_graph):
        int8_plan = plan_activation_memory(bioformer_graph, bytes_per_element=1)
        int32_plan = plan_activation_memory(bioformer_graph, bytes_per_element=4)
        assert int32_plan.peak_bytes == pytest.approx(4 * int8_plan.peak_bytes, rel=0.01)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_packing_invariant_over_architectures(self, heads, depth):
        model = Bioformer(
            BioformerConfig(
                num_channels=2, window_samples=40, patch_size=10, depth=depth, num_heads=heads, seed=1
            )
        ).eval()
        graph = trace_bioformer(model)
        plan = plan_activation_memory(graph)
        self._assert_no_conflicts(plan)
        assert plan.peak_bytes >= graph.largest_activation().num_elements


# --------------------------------------------------------------------- #
# L1 tiling
# --------------------------------------------------------------------- #
class TestTiling:
    def test_every_mac_kernel_is_tiled(self, temponet_graph):
        plan = plan_tiling(temponet_graph)
        mac_nodes = [node for node in temponet_graph if node.op in ("conv1d", "linear", "matmul")]
        assert len(plan.layers) == len(mac_nodes)

    def test_tiles_fit_budget(self, temponet_graph):
        config = TilingConfig()
        plan = plan_tiling(temponet_graph, config)
        for layer in plan.layers:
            assert layer.tile_bytes <= config.tile_budget

    def test_small_bioformer_is_single_tile(self, bioformer_graph):
        plan = plan_tiling(bioformer_graph)
        assert plan.all_fit_single_tile
        assert plan.total_tiles == len(plan.layers)

    def test_paper_bioformer_is_mostly_single_tile(self):
        graph = trace_bioformer(bioformer_bio1(patch_size=10).eval())
        plan = plan_tiling(graph)
        single = sum(1 for layer in plan.layers if layer.single_tile)
        assert single >= len(plan.layers) - 2

    def test_tiny_l1_forces_tiling(self, bioformer_graph):
        tiny = TilingConfig(l1_bytes=4 * 1024)
        plan = plan_tiling(bioformer_graph, tiny)
        assert not plan.all_fit_single_tile
        for layer in plan.layers:
            assert layer.tile_bytes <= tiny.tile_budget

    def test_more_tiles_means_more_dma_for_weight_heavy_layers(self):
        graph = trace_temponet(temponet(num_channels=14, window_samples=300).eval())
        generous = plan_tiling(graph, TilingConfig(l1_bytes=256 * 1024))
        constrained = plan_tiling(graph, TilingConfig(l1_bytes=8 * 1024))
        assert constrained.total_dma_bytes >= generous.total_dma_bytes

    def test_dma_and_compute_cycles_positive(self, temponet_graph):
        config = TilingConfig()
        plan = plan_tiling(temponet_graph, config)
        for layer in plan.layers:
            assert layer.dma_cycles(config) > 0
            assert layer.compute_cycles(config) > 0
            assert layer.bottleneck(config) in ("compute", "dma")

    def test_summary_lists_layers(self, temponet_graph):
        plan = plan_tiling(temponet_graph)
        summary = plan.summary()
        for layer in plan.layers[:3]:
            assert layer.name in summary

    def test_double_buffering_halves_budget(self):
        assert TilingConfig(l1_bytes=1000, double_buffering=True).tile_budget == 500
        assert TilingConfig(l1_bytes=1000, double_buffering=False).tile_budget == 1000
