"""Tests of the functional ops (repro.nn.functional)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor
from repro.nn import functional as F


def finite_difference(function, tensor, index, eps=1e-6):
    original = tensor.data[index]
    tensor.data[index] = original + eps
    up = float(function().data)
    tensor.data[index] = original - eps
    down = float(function().data)
    tensor.data[index] = original
    return (up - down) / (2 * eps)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerically_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 0.0]]))
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((2, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        (F.softmax(x) ** 2).sum().backward()
        index = (1, 2)
        numeric = finite_difference(lambda: (F.softmax(Tensor(x.data)) ** 2).sum(), x, index)
        assert abs(numeric - x.grad[index]) < 1e-5

    @given(arrays(np.float64, (3, 5), elements=st.floats(-30, 30)))
    @settings(max_examples=25, deadline=None)
    def test_softmax_probabilities_property(self, values):
        out = F.softmax(Tensor(values)).data
        assert np.all(out >= 0) and np.all(out <= 1)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)


class TestActivations:
    def test_gelu_reference_values(self):
        # GELU(0) = 0, GELU(large) ~ identity, GELU(-large) ~ 0.
        out = F.gelu(Tensor([0.0, 10.0, -10.0])).data
        assert out[0] == pytest.approx(0.0, abs=1e-9)
        assert out[1] == pytest.approx(10.0, rel=1e-4)
        assert out[2] == pytest.approx(0.0, abs=1e-3)

    def test_gelu_matches_erf_formula(self, rng):
        from scipy.special import erf

        x = rng.standard_normal(100)
        expected = x * 0.5 * (1.0 + erf(x / np.sqrt(2)))
        np.testing.assert_allclose(F.gelu(Tensor(x)).data, expected, atol=5e-3)

    def test_relu_and_sigmoid_and_tanh(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(F.relu(x).data, [0.0, 2.0])
        np.testing.assert_allclose(F.sigmoid(x).data, 1 / (1 + np.exp([1.0, -2.0])))
        np.testing.assert_allclose(F.tanh(x).data, np.tanh([-1.0, 2.0]))

    def test_gelu_gradcheck(self, rng):
        x = Tensor(rng.standard_normal(5), requires_grad=True)
        F.gelu(x).sum().backward()
        numeric = finite_difference(lambda: F.gelu(Tensor(x.data)).sum(), x, (1,))
        assert abs(numeric - x.grad[1]) < 1e-5


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_scales_survivors(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.25, training=True, rng=np.random.default_rng(0))
        survivors = out.data[out.data > 0]
        np.testing.assert_allclose(survivors, 1.0 / 0.75)
        # The expected value is preserved (within sampling noise).
        assert abs(out.data.mean() - 1.0) < 0.08

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, training=True)

    def test_zero_probability_is_identity(self):
        x = Tensor([1.0, 2.0])
        assert F.dropout(x, 0.0, training=True) is x


class TestLayerNorm:
    def test_output_statistics(self, rng):
        x = Tensor(rng.standard_normal((4, 16)) * 5 + 3)
        out = F.layer_norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_parameters_applied(self, rng):
        x = Tensor(rng.standard_normal((2, 8)))
        weight = Tensor(2 * np.ones(8))
        bias = Tensor(np.ones(8))
        out = F.layer_norm(x, weight, bias).data
        base = F.layer_norm(x).data
        np.testing.assert_allclose(out, 2 * base + 1, atol=1e-10)

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        (F.layer_norm(x) ** 2).sum().backward()
        numeric = finite_difference(lambda: (F.layer_norm(Tensor(x.data)) ** 2).sum(), x, (0, 3))
        assert abs(numeric - x.grad[0, 3]) < 1e-4


class TestBatchNorm:
    def test_training_normalises_and_updates_running_stats(self, rng):
        x = Tensor(rng.standard_normal((64, 5)) * 3 + 2)
        running_mean = np.zeros(5)
        running_var = np.ones(5)
        out = F.batch_norm(x, running_mean, running_var, None, None, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-7)
        assert np.all(running_mean != 0.0)

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.standard_normal((8, 3)))
        running_mean = np.array([1.0, 2.0, 3.0])
        running_var = np.array([4.0, 4.0, 4.0])
        out = F.batch_norm(x, running_mean, running_var, None, None, training=False)
        np.testing.assert_allclose(out.data, (x.data - running_mean) / np.sqrt(4.0 + 1e-5))

    def test_3d_input_normalised_per_channel(self, rng):
        x = Tensor(rng.standard_normal((4, 3, 10)) + 5)
        out = F.batch_norm(x, np.zeros(3), np.ones(3), None, None, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2)), 0.0, atol=1e-7)

    def test_rejects_4d_input(self):
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(np.zeros((1, 2, 3, 4))), np.zeros(2), np.ones(2), None, None, True)


class TestConv1d:
    def test_matches_manual_convolution(self):
        x = Tensor(np.arange(10.0).reshape(1, 1, 10))
        weight = Tensor(np.array([[[1.0, 0.0, -1.0]]]))
        out = F.conv1d(x, weight)
        # Cross-correlation with [1, 0, -1]: x[i] - x[i+2] = -2 everywhere.
        np.testing.assert_allclose(out.data, np.full((1, 1, 8), -2.0))

    def test_stride_and_padding_output_length(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 20)))
        weight = Tensor(rng.standard_normal((4, 3, 5)))
        assert F.conv1d(x, weight, stride=5).shape == (2, 4, 4)
        assert F.conv1d(x, weight, padding=2).shape == (2, 4, 20)

    def test_dilation_output_length(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 30)))
        weight = Tensor(rng.standard_normal((2, 2, 3)))
        assert F.conv1d(x, weight, dilation=4).shape == (1, 2, 22)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((1, 3, 10))), Tensor(np.zeros((2, 4, 3))))

    def test_too_short_input_raises(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((1, 1, 2))), Tensor(np.zeros((1, 1, 5))))

    def test_non_overlapping_patches_equal_linear_projection(self, rng):
        """kernel == stride: each output position is a linear map of one patch."""
        x_values = rng.standard_normal((2, 3, 12))
        weight_values = rng.standard_normal((5, 3, 4))
        out = F.conv1d(Tensor(x_values), Tensor(weight_values), stride=4).data
        patches = x_values.reshape(2, 3, 3, 4)
        expected = np.einsum("bcnk,ock->bon", patches, weight_values)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    @pytest.mark.parametrize("stride,padding,dilation", [(1, 0, 1), (2, 2, 1), (1, 3, 3), (3, 1, 2)])
    def test_gradcheck_all_inputs(self, rng, stride, padding, dilation):
        x = Tensor(rng.standard_normal((2, 3, 16)), requires_grad=True)
        weight = Tensor(rng.standard_normal((4, 3, 3)) * 0.3, requires_grad=True)
        bias = Tensor(rng.standard_normal(4) * 0.3, requires_grad=True)

        def run():
            return (
                F.conv1d(Tensor(x.data), Tensor(weight.data), Tensor(bias.data),
                         stride=stride, padding=padding, dilation=dilation) ** 2
            ).sum()

        (F.conv1d(x, weight, bias, stride=stride, padding=padding, dilation=dilation) ** 2).sum().backward()
        for tensor, index in ((x, (1, 2, 5)), (weight, (2, 1, 1)), (bias, (1,))):
            numeric = finite_difference(run, tensor, index)
            assert abs(numeric - tensor.grad[index]) < 1e-4


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(8.0).reshape(1, 1, 8))
        out = F.avg_pool1d(x, kernel_size=2)
        np.testing.assert_allclose(out.data, [[[0.5, 2.5, 4.5, 6.5]]])

    def test_max_pool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]))
        out = F.max_pool1d(x, kernel_size=2)
        np.testing.assert_allclose(out.data, [[[3.0, 5.0]]])

    def test_pool_backward_shapes(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 12)), requires_grad=True)
        F.avg_pool1d(x, 3).sum().backward()
        assert x.grad.shape == x.shape


class TestLosses:
    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_cross_entropy_known_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1]])))
        loss = F.cross_entropy(logits, np.array([0]))
        assert float(loss.data) == pytest.approx(-np.log(0.7), rel=1e-6)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(8), rel=1e-6)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        targets = np.array([1, 0, 4])
        F.cross_entropy(logits, targets).backward()
        probabilities = F.softmax(Tensor(logits.data)).data
        expected = (probabilities - F.one_hot(targets, 5)) / 3
        np.testing.assert_allclose(logits.grad, expected, atol=1e-8)

    def test_label_smoothing_reduces_confidence_penalty(self, rng):
        logits = Tensor(rng.standard_normal((4, 6)) * 3)
        targets = np.array([0, 1, 2, 3])
        plain = float(F.cross_entropy(logits, targets).data)
        smoothed = float(F.cross_entropy(logits, targets, label_smoothing=0.1).data)
        assert smoothed != plain

    def test_nll_loss_consistent_with_cross_entropy(self, rng):
        logits = Tensor(rng.standard_normal((5, 4)))
        targets = np.array([0, 1, 2, 3, 0])
        ce = float(F.cross_entropy(logits, targets).data)
        nll = float(F.nll_loss(F.log_softmax(logits), targets).data)
        assert ce == pytest.approx(nll, rel=1e-10)

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(2.5)

    def test_linear_matches_manual(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        weight = Tensor(rng.standard_normal((2, 4)))
        bias = Tensor(rng.standard_normal(2))
        np.testing.assert_allclose(
            F.linear(x, weight, bias).data, x.data @ weight.data.T + bias.data, atol=1e-12
        )
