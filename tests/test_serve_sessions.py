"""Session-lifecycle tests: checkpoints, quotas, reaping, degradation.

The crash-safe contract is pinned **bitwise**: for every registry config
(float and int8 backends, LUT and elementwise op sets), a session
restored from a mid-stream checkpoint — round-tripped through JSON —
emits decisions identical to the uninterrupted session for the same tail
of signal.  On top of that, the :class:`SessionManager` tests drive the
fleet layer deterministically with an injectable clock: idle reaping,
per-tenant session and samples/sec quotas, LOW-tenant-first pressure
eviction, graceful drain that settles in-flight chunks, and
degraded-electrode masking that flags decisions instead of poisoning the
majority vote.
"""

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.data import StreamWindower, sliding_window_count
from repro.serve import (
    SESSION_CHECKPOINT_VERSION,
    BackendCache,
    InferenceServer,
    ManagedSession,
    MajorityVoter,
    Overloaded,
    Priority,
    QuotaExceeded,
    ServingError,
    SessionCheckpoint,
    SessionEvicted,
    SessionManager,
    SessionManagerStats,
    StreamSession,
    TenantStats,
    restore_stream_session,
)

GEOMETRY = dict(num_channels=4, window_samples=60, seed=3)

#: Every registry-reachable (architecture, patch_size) pair; temponet has
#: no patch-size knob.
CONFIGS = [
    ("bio1", 10),
    ("bio1", 20),
    ("bio2", 10),
    ("bio2", 20),
    ("temponet", None),
]

#: Backend variants the bitwise pin must hold for.
VARIANTS = ["float", "int8-lut", "int8-elem"]


def config_id(config):
    arch, patch = config
    return arch if patch is None else f"{arch}-p{patch}"


class FakeClock:
    """Injectable monotonic clock for deterministic TTL/quota tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def toy_classify(windows: np.ndarray) -> np.ndarray:
    """Deterministic pure function of window content (8 classes)."""
    return (np.abs(np.sum(windows, axis=(1, 2))) * 997).astype(np.int64) % 8


def make_manager(**kwargs) -> SessionManager:
    defaults = dict(
        classify=toy_classify, window=60, num_channels=4, slide=20, smoothing=3
    )
    defaults.update(kwargs)
    return SessionManager(**defaults)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="module")
def shared_cache():
    return BackendCache()


def build_server(config, variant, cache) -> InferenceServer:
    arch, patch = config
    backend = "float"
    calibration = None
    lower_kwargs = None
    if variant != "float":
        backend = "int8"
        calibration = np.random.default_rng(5).normal(size=(16, 4, 60))
        lower_kwargs = {"use_lut": variant == "int8-lut"}
    return InferenceServer(
        arch,
        backend,
        patch_size=patch,
        model_kwargs=GEOMETRY,
        calibration=calibration,
        lower_kwargs=lower_kwargs,
        cache=cache,
        max_batch_size=8,
        max_wait_s=0.0005,
    )


# --------------------------------------------------------------------- #
# Windower state export (the data-layer substrate of checkpoints)
# --------------------------------------------------------------------- #
class TestWindowerState:
    def test_state_round_trip_is_bitwise(self):
        rng = np.random.default_rng(2)
        signal = rng.normal(size=(3, 377))
        original = StreamWindower(40, 13, num_channels=3)
        original.push(signal[:, :190])
        clone = StreamWindower(40, 13, num_channels=3)
        clone.load_state(original.state())
        tail = signal[:, 190:]
        np.testing.assert_array_equal(original.push(tail), clone.push(tail))
        assert clone.windows_emitted == original.windows_emitted
        assert clone.samples_seen == original.samples_seen

    def test_state_buffer_is_a_copy(self):
        windower = StreamWindower(10, 10, num_channels=1)
        windower.push(np.ones((1, 7)))
        state = windower.state()
        state["buffer"][...] = 99.0
        # Mutating the snapshot never reaches the live buffer.
        assert windower.push(np.ones((1, 3))).shape[0] == 1

    @pytest.mark.parametrize("key,value", [("window", 99), ("slide", 99), ("num_channels", 99)])
    def test_load_state_rejects_geometry_mismatch(self, key, value):
        windower = StreamWindower(20, 5, num_channels=2)
        state = windower.state()
        state[key] = value
        fresh = StreamWindower(20, 5, num_channels=2)
        with pytest.raises(ValueError, match=key):
            fresh.load_state(state)

    def test_load_state_rejects_dtype_mismatch(self):
        state = StreamWindower(20, 5, num_channels=2).state()
        state["dtype"] = "<f4"
        with pytest.raises(ValueError, match="dtype"):
            StreamWindower(20, 5, num_channels=2).load_state(state)

    def test_empty_buffer_survives_list_round_trip(self):
        """A (C, 0) remainder loses its channel axis through ``tolist``;
        ``load_state`` must normalise it back instead of rejecting."""
        original = StreamWindower(10, 10, num_channels=4)
        original.push(np.zeros((4, 20)))  # exact multiple: empty remainder
        state = original.state()
        state["buffer"] = np.asarray(state["buffer"]).tolist()
        clone = StreamWindower(10, 10, num_channels=4)
        clone.load_state(state)
        assert clone.pending_samples == 0
        assert clone.push(np.zeros((4, 10))).shape == (1, 4, 10)


# --------------------------------------------------------------------- #
# SessionCheckpoint: capture / restore / serialization
# --------------------------------------------------------------------- #
class TestSessionCheckpoint:
    def make_session(self):
        return StreamSession(toy_classify, window=60, slide=20, num_channels=4, smoothing=3)

    def test_payload_json_round_trip_is_exact(self, rng):
        session = self.make_session()
        session.run(rng.normal(size=(4, 173)), chunk_size=31)
        checkpoint = SessionCheckpoint.capture(session, session_id="s42", tenant="a")
        clone = SessionCheckpoint.from_json(checkpoint.to_json())
        np.testing.assert_array_equal(clone.buffer, checkpoint.buffer)
        assert clone.buffer.dtype == checkpoint.buffer.dtype
        assert clone.to_payload() == checkpoint.to_payload()
        assert clone.session_id == "s42" and clone.tenant == "a"
        assert clone.version == SESSION_CHECKPOINT_VERSION

    def test_unknown_version_rejected(self, rng):
        session = self.make_session()
        payload = SessionCheckpoint.capture(session).to_payload()
        payload["version"] = SESSION_CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            SessionCheckpoint.from_payload(payload)
        stale = dataclasses.replace(
            SessionCheckpoint.capture(session), version=SESSION_CHECKPOINT_VERSION + 1
        )
        with pytest.raises(ValueError, match="version"):
            stale.restore_into(self.make_session())

    def test_restore_into_rejects_geometry_mismatch(self, rng):
        session = self.make_session()
        session.run(rng.normal(size=(4, 100)), chunk_size=25)
        checkpoint = SessionCheckpoint.capture(session)
        other = StreamSession(toy_classify, window=30, slide=20, num_channels=4, smoothing=3)
        with pytest.raises(ValueError, match="window"):
            checkpoint.restore_into(other)
        narrower = StreamSession(toy_classify, window=60, slide=20, num_channels=4, smoothing=5)
        with pytest.raises(ValueError, match="history"):
            checkpoint.restore_into(narrower)

    def test_restored_indices_continue_the_stream(self, rng):
        signal = rng.normal(size=(4, 260))
        session = self.make_session()
        head = session.run(signal[:, :130], chunk_size=19)
        checkpoint = SessionCheckpoint.capture(session)
        restored = restore_stream_session(checkpoint, toy_classify)
        assert restored.windows_classified == len(head)
        assert restored.decisions == []
        tail = restored.run(signal[:, 130:], chunk_size=19)
        assert [d.window_index for d in head + tail] == list(range(len(head) + len(tail)))

    def test_decisions_are_outputs_not_state(self, rng):
        """Checkpointing twice around a push changes only the counters —
        recorded decisions never bloat the snapshot."""
        session = self.make_session()
        session.run(rng.normal(size=(4, 200)), chunk_size=40)
        payload = SessionCheckpoint.capture(session).to_payload()
        assert "decisions" not in payload


# --------------------------------------------------------------------- #
# The bitwise pin, per registry config and backend variant
# --------------------------------------------------------------------- #
@pytest.mark.slow  # full registry x backend matrix; tier-1 keeps the targeted unit tests
class TestCheckpointParityRegistry:
    CUTS = [73, 150, 301]

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("config", CONFIGS, ids=config_id)
    def test_restored_equals_uninterrupted(self, config, variant, shared_cache):
        rng = np.random.default_rng(7)
        signal = rng.normal(size=(4, 400))
        with build_server(config, variant, shared_cache) as server:
            baseline = server.open_stream(slide=20, smoothing=3)
            expected = baseline.run(signal, chunk_size=17)
            assert len(expected) == sliding_window_count(400, 60, 20)

            def classify(windows):
                return server.predict(windows, priority=Priority.HIGH)

            for cut in self.CUTS:
                head = server.open_stream(slide=20, smoothing=3)
                head.run(signal[:, :cut], chunk_size=17)
                wire = SessionCheckpoint.capture(head).to_json()
                tail = restore_stream_session(SessionCheckpoint.from_json(wire), classify)
                tail.run(signal[:, cut:], chunk_size=17)
                assert head.decisions + tail.decisions == expected, (
                    f"cut={cut}: restored decisions diverge from uninterrupted run"
                )


# --------------------------------------------------------------------- #
# Manager lifecycle
# --------------------------------------------------------------------- #
class TestManagerLifecycle:
    def test_create_attach_close(self, rng):
        with make_manager() as manager:
            session = manager.create_session("alice")
            assert session.session_id == "s000001"
            assert len(manager) == 1 and session.session_id in manager
            assert manager.attach(session.session_id) is session
            with pytest.raises(KeyError):
                manager.attach("s999999")
            session.run(rng.normal(size=(4, 200)), chunk_size=50)
            final = manager.close_session(session.session_id)
            assert final.samples_seen == 200
            assert session.state == "closed"
            assert len(manager) == 0
            with pytest.raises(SessionEvicted):
                session.push(rng.normal(size=(4, 10)))
            with pytest.raises(SessionEvicted):
                manager.close_session(session.session_id)
            assert manager.stats.sessions_closed == 1

    def test_managed_decisions_match_raw_session(self, rng):
        signal = rng.normal(size=(4, 300))
        raw = StreamSession(toy_classify, window=60, slide=20, num_channels=4, smoothing=3)
        raw_decisions = raw.run(signal, chunk_size=37)
        with make_manager() as manager:
            managed = manager.create_session()
            assert managed.run(signal, chunk_size=37) == raw_decisions
            assert managed.windows == len(raw_decisions)
            assert managed.samples == 300

    def test_detach_checkpoints_without_closing(self, rng):
        with make_manager() as manager:
            session = manager.create_session("bob")
            session.run(rng.normal(size=(4, 150)), chunk_size=50)
            token = manager.detach(session.session_id)
            assert token.samples_seen == 150
            assert session.state == "active"  # still live, TTL still running
            session.push(rng.normal(size=(4, 50)))

    def test_idle_reaping_is_deterministic(self, rng):
        clock = FakeClock()
        with make_manager(idle_ttl_s=10.0, clock=clock) as manager:
            stale = manager.create_session("a")
            fresh = manager.create_session("b")
            stale.run(rng.normal(size=(4, 120)), chunk_size=60)
            clock.advance(9.0)
            fresh.push(rng.normal(size=(4, 30)))  # refreshes b's idle clock
            clock.advance(1.0)  # a idle 10s, b idle 1s
            assert manager.reap_idle() == 1
            assert stale.state == "evicted" and fresh.state == "active"
            with pytest.raises(SessionEvicted) as excinfo:
                stale.push(rng.normal(size=(4, 10)))
            assert excinfo.value.reason == "idle"
            assert excinfo.value.session_id == stale.session_id
            with pytest.raises(SessionEvicted):
                manager.attach(stale.session_id)
            # No state lost: the final checkpoint survives reaping.
            assert manager.checkpoint(stale.session_id).samples_seen == 120

    def test_restore_after_reaping_is_bitwise(self, rng):
        signal = rng.normal(size=(4, 400))
        control = StreamSession(toy_classify, window=60, slide=20, num_channels=4, smoothing=3)
        expected = control.run(signal, chunk_size=23)
        clock = FakeClock()
        with make_manager(idle_ttl_s=5.0, clock=clock) as manager:
            session = manager.create_session("a")
            head = session.run(signal[:, :170], chunk_size=23)
            clock.advance(6.0)
            assert manager.reap_idle() == 1
            revived = manager.restore(manager.checkpoint(session.session_id))
            assert revived.session_id != session.session_id
            assert revived.tenant == "a"
            tail = revived.run(signal[:, 170:], chunk_size=23)
            assert head + tail == expected

    def test_janitor_thread_reaps_on_real_clock(self, rng):
        with make_manager(idle_ttl_s=0.05, janitor_interval_s=0.01) as manager:
            session = manager.create_session()
            deadline = time.monotonic() + 2.0
            while session.state == "active" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert session.state == "evicted"
            assert manager.stats.reaped_idle == 1

    def test_session_count_quota(self):
        with make_manager(max_sessions_per_tenant=2) as manager:
            manager.create_session("t")
            manager.create_session("t")
            with pytest.raises(QuotaExceeded) as excinfo:
                manager.create_session("t")
            assert excinfo.value.tenant == "t"
            assert excinfo.value.quota == "sessions"
            manager.create_session("other")  # other tenants unaffected
            assert manager.stats.tenants["t"].quota_rejections == 1

    def test_samples_per_second_token_bucket(self, rng):
        clock = FakeClock()
        with make_manager(clock=clock) as manager:
            manager.configure_tenant("t", samples_per_s=100.0, burst_s=1.0)
            session = manager.create_session("t")
            session.push(rng.normal(size=(4, 100)))  # burst budget spent
            with pytest.raises(QuotaExceeded) as excinfo:
                session.push(rng.normal(size=(4, 50)))
            assert excinfo.value.quota == "samples_per_s"
            assert excinfo.value.tenant == "t"
            clock.advance(0.5)  # refills 50 tokens
            session.push(rng.normal(size=(4, 50)))
            stats = manager.stats.tenants["t"]
            assert stats.samples == 150
            assert stats.quota_rejections == 1

    def test_rejected_chunk_is_never_partially_ingested(self, rng):
        clock = FakeClock()
        with make_manager(clock=clock) as manager:
            manager.configure_tenant("t", samples_per_s=100.0, burst_s=1.0)
            session = manager.create_session("t")
            with pytest.raises(QuotaExceeded):
                session.push(rng.normal(size=(4, 150)))  # bigger than the budget
            assert session.samples_seen == 0  # all-or-nothing

    def test_pressure_evicts_low_priority_lru_first(self, rng):
        clock = FakeClock()
        with make_manager(max_sessions=2, clock=clock) as manager:
            manager.configure_tenant("vip", priority=Priority.HIGH)
            manager.configure_tenant("batch", priority=Priority.LOW)
            lru = manager.create_session("batch")
            mru = manager.create_session("batch")
            clock.advance(1.0)
            mru.push(rng.normal(size=(4, 30)))  # mru is now the fresher one
            vip = manager.create_session("vip")
            assert lru.state == "evicted" and mru.state == "active"
            with pytest.raises(SessionEvicted) as excinfo:
                lru.push(rng.normal(size=(4, 10)))
            assert excinfo.value.reason == "pressure"
            assert manager.stats.evicted_pressure == 1
            # A LOW tenant cannot evict HIGH/LOW peers to get in.
            with pytest.raises(QuotaExceeded):
                manager.create_session("batch")
            assert vip.state == "active"

    def test_drain_checkpoints_everything_and_stops_admission(self, rng):
        with make_manager() as manager:
            a = manager.create_session("a")
            b = manager.create_session("b")
            a.run(rng.normal(size=(4, 140)), chunk_size=70)
            checkpoints = manager.drain()
            assert set(checkpoints) == {a.session_id, b.session_id}
            assert checkpoints[a.session_id].samples_seen == 140
            assert a.state == "evicted" and b.state == "evicted"
            with pytest.raises(SessionEvicted) as excinfo:
                a.push(rng.normal(size=(4, 10)))
            assert excinfo.value.reason == "drain"
            with pytest.raises(Overloaded):
                manager.create_session("c")
            assert manager.drain() == {}  # idempotent

    def test_drain_settles_in_flight_chunks(self, rng):
        release = threading.Event()

        def slow_classify(windows):
            release.wait(timeout=5.0)
            return toy_classify(windows)

        manager = SessionManager(
            classify=slow_classify, window=60, num_channels=4, slide=20, smoothing=3
        )
        session = manager.create_session()
        result = {}

        def pusher():
            result["decisions"] = session.push(rng.normal(size=(4, 120)))

        thread = threading.Thread(target=pusher)
        thread.start()
        time.sleep(0.05)  # the push is parked inside classify
        release.set()
        checkpoints = manager.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # The in-flight chunk completed and its windows are in the final
        # checkpoint — drain settled it instead of racing it.
        assert len(result["decisions"]) == sliding_window_count(120, 60, 20)
        assert checkpoints[session.session_id].windows_classified == len(result["decisions"])

    def test_degraded_nan_channel_is_masked_not_fatal(self, rng):
        signal = rng.normal(size=(4, 120))
        poisoned = signal.copy()
        poisoned[2, 17] = np.nan
        masked = signal.copy()
        masked[2, :] = 0.0  # what the manager should feed the classifier
        control = StreamSession(toy_classify, window=60, slide=20, num_channels=4, smoothing=3)
        expected = control.run(masked, chunk_size=120)
        with make_manager() as manager:
            session = manager.create_session("t")
            decisions = session.push(poisoned)
            assert len(decisions) == len(expected)
            assert all(d.degraded for d in decisions)
            assert [d.label for d in decisions] == [d.label for d in expected]
            assert [d.smoothed_label for d in decisions] == [
                d.smoothed_label for d in expected
            ]
            assert session.decisions == decisions  # recorded flags match
            assert manager.stats.tenants["t"].degraded_windows == len(decisions)

    def test_degraded_flatline_channel_detected(self, rng):
        signal = rng.normal(size=(4, 120))
        signal[1, :] = 0.25  # dead electrode: exact DC flatline
        with make_manager() as manager:
            session = manager.create_session()
            decisions = session.push(signal)
            assert decisions and all(d.degraded for d in decisions)

    def test_short_flatline_chunk_not_flagged(self, rng):
        with make_manager(dead_channel_min_samples=32) as manager:
            session = manager.create_session()
            chunk = rng.normal(size=(4, 16))
            chunk[0, :] = 1.0  # constant, but too short to call dead
            session.push(chunk)
            tail = rng.normal(size=(4, 104))
            decisions = session.push(tail)
            assert decisions and not any(d.degraded for d in decisions)

    def test_clean_chunks_are_not_degraded(self, rng):
        with make_manager() as manager:
            session = manager.create_session()
            decisions = session.run(rng.normal(size=(4, 200)), chunk_size=50)
            assert decisions and not any(d.degraded for d in decisions)
            assert session.degraded_windows == 0

    def test_malformed_chunk_keeps_canonical_error_and_charges_nothing(self, rng):
        clock = FakeClock()
        with make_manager(clock=clock) as manager:
            manager.configure_tenant("t", samples_per_s=100.0, burst_s=1.0)
            session = manager.create_session("t")
            with pytest.raises(ValueError, match="expects 4 channel"):
                session.push(rng.normal(size=(3, 50)))
            # The garbage chunk consumed no quota: the full burst remains.
            session.push(rng.normal(size=(4, 100)))

    def test_stats_snapshots_are_frozen(self, rng):
        with make_manager() as manager:
            session = manager.create_session("t")
            session.run(rng.normal(size=(4, 100)), chunk_size=50)
            stats = manager.stats
            assert isinstance(stats, SessionManagerStats)
            with pytest.raises(dataclasses.FrozenInstanceError):
                stats.sessions_open = 99
            with pytest.raises(dataclasses.FrozenInstanceError):
                stats.tenants["t"].windows = 99

    def test_tenant_stats_conserve_counts(self, rng):
        with make_manager() as manager:
            manager.configure_tenant("a", priority=Priority.HIGH)
            manager.configure_tenant("b", priority=Priority.LOW)
            sessions = [manager.create_session(t) for t in ("a", "a", "b")]
            total = 0
            for i, session in enumerate(sessions):
                total += len(session.run(rng.normal(size=(4, 100 + 20 * i)), chunk_size=40))
            stats = manager.stats
            assert sum(t.windows for t in stats.tenants.values()) == total
            assert sum(t.samples for t in stats.tenants.values()) == 100 + 120 + 140
            assert stats.sessions_created == 3

    def test_serverless_manager_requires_geometry(self):
        with pytest.raises(ValueError, match="classify"):
            SessionManager()
        with pytest.raises(ValueError, match="slide"):
            SessionManager(classify=toy_classify, window=60, num_channels=4).create_session()


# --------------------------------------------------------------------- #
# Server integration
# --------------------------------------------------------------------- #
class TestServerIntegration:
    def make_server(self, cache):
        return InferenceServer(
            "bio1",
            "float",
            patch_size=10,
            model_kwargs=GEOMETRY,
            cache=cache,
            max_batch_size=8,
            max_wait_s=0.0005,
        )

    def test_health_surfaces_session_stats(self, rng, shared_cache):
        server = self.make_server(shared_cache)
        try:
            assert server.health().sessions is None  # no manager attached yet
            manager = server.open_session_manager(slide=20, smoothing=3)
            session = manager.create_session("clinic")
            session.run(rng.normal(size=(4, 200)), chunk_size=50)
            snapshot = server.health().sessions
            assert isinstance(snapshot, SessionManagerStats)
            assert snapshot.sessions_open == 1
            assert snapshot.tenants["clinic"].windows == len(session.decisions)
        finally:
            server.close()

    def test_server_close_drains_manager(self, rng, shared_cache):
        server = self.make_server(shared_cache)
        manager = server.open_session_manager(slide=20)
        session = manager.create_session()
        session.run(rng.normal(size=(4, 140)), chunk_size=70)
        server.close()
        assert manager.closed
        assert session.state == "evicted"
        with pytest.raises(SessionEvicted) as excinfo:
            session.push(rng.normal(size=(4, 10)))
        assert excinfo.value.reason == "drain"
        # State survived the shutdown.
        assert manager.checkpoint(session.session_id).samples_seen == 140

    def test_one_live_manager_per_server(self, shared_cache):
        with self.make_server(shared_cache) as server:
            first = server.open_session_manager(slide=20)
            with pytest.raises(RuntimeError, match="session manager"):
                server.open_session_manager(slide=20)
            first.close()
            server.open_session_manager(slide=30)  # closed manager is replaceable

    def test_manager_restore_through_server_is_bitwise(self, rng, shared_cache):
        signal = rng.normal(size=(4, 360))
        with self.make_server(shared_cache) as server:
            baseline = server.open_stream(slide=20, smoothing=3)
            expected = baseline.run(signal, chunk_size=29)
            manager = server.open_session_manager(slide=20, smoothing=3)
            session = manager.create_session()
            head = session.run(signal[:, :151], chunk_size=29)
            wire = manager.close_session(session.session_id).to_json()
            revived = manager.restore(SessionCheckpoint.from_json(wire))
            tail = revived.run(signal[:, 151:], chunk_size=29)
            assert head + tail == expected
